(* Tests for the extensions beyond the paper's core pipeline: the TLB
   side channel, the Mpage model, the model-repair loop (Sec. 8 future
   work), and the experiment journal. *)

module Ast = Scamv_isa.Ast
module Reg = Scamv_isa.Reg
module Machine = Scamv_isa.Machine
module Platform = Scamv_isa.Platform
module Tlb = Scamv_microarch.Tlb
module Core = Scamv_microarch.Core
module Executor = Scamv_microarch.Executor
module Catalog = Scamv_models.Catalog
module Refinement = Scamv_models.Refinement
module Templates = Scamv_gen.Templates
module Obs = Scamv_bir.Obs
module Exec = Scamv_symbolic.Exec
module Journal = Scamv.Journal
module Repair = Scamv.Repair
module Stats = Scamv.Stats

let x = Reg.x
let platform = Platform.cortex_a53
let addr base offset = { Ast.base; offset; scale = 0 }

(* ---- Tlb ---- *)

let test_tlb_miss_then_hit () =
  let t = Tlb.create platform in
  Alcotest.(check bool) "first miss" true (Tlb.access t 0x1000L = `Miss);
  Alcotest.(check bool) "same page hits" true (Tlb.access t 0x1FFFL = `Hit);
  Alcotest.(check bool) "next page misses" true (Tlb.access t 0x2000L = `Miss)

let test_tlb_lru_eviction () =
  let t = Tlb.create ~entries:3 platform in
  List.iter (fun i -> ignore (Tlb.access t (Int64.of_int (i * 4096)))) [ 0; 1; 2; 3 ];
  Alcotest.(check bool) "oldest evicted" false (Tlb.contains t 0L);
  Alcotest.(check bool) "newest present" true (Tlb.contains t (Int64.of_int (3 * 4096)))

let test_tlb_lru_refresh () =
  let t = Tlb.create ~entries:2 platform in
  ignore (Tlb.access t 0L);
  ignore (Tlb.access t 4096L);
  ignore (Tlb.access t 0L) (* refresh page 0 *);
  ignore (Tlb.access t 8192L) (* evicts page 1 *);
  Alcotest.(check bool) "refreshed survives" true (Tlb.contains t 0L);
  Alcotest.(check bool) "stale evicted" false (Tlb.contains t 4096L)

let test_tlb_snapshot_sorted () =
  let t = Tlb.create platform in
  ignore (Tlb.access t 8192L);
  ignore (Tlb.access t 0L);
  Alcotest.(check (list Alcotest.int64)) "sorted pages" [ 0L; 2L ] (Tlb.snapshot t);
  Tlb.reset t;
  Alcotest.(check (list Alcotest.int64)) "reset" [] (Tlb.snapshot t)

let test_tlb_capacity_validated () =
  Alcotest.check_raises "zero entries" (Invalid_argument "Tlb.create: entries must be positive")
    (fun () -> ignore (Tlb.create ~entries:0 platform))

(* ---- core/TLB integration ---- *)

let quiet = { Core.cortex_a53 with Core.prefetch_fire_prob = 1.0; mispredict_noise = 0.0 }

let test_core_loads_touch_tlb () =
  let core = Core.create quiet in
  let m = Machine.create () in
  Machine.set_reg m (x 0) 0x8000_0000L;
  ignore (Core.run core [| Ast.Ldr (x 1, addr (x 0) (Ast.Imm 0L)) |] m);
  Alcotest.(check bool) "page resident" true (Tlb.contains (Core.tlb core) 0x8000_0000L)

let test_transient_loads_touch_tlb () =
  (* A mispredicted branch's wrong-path load leaves a TLB footprint, like
     its cache footprint. *)
  let program =
    [|
      Ast.Cmp (x 1, Ast.Reg (x 2));
      Ast.B_cond (Ast.Hs, 3);
      Ast.Ldr (x 6, addr (x 5) (Ast.Imm 0L));
    |]
  in
  let s = Machine.create () in
  Machine.set_reg s (x 1) 8L;
  Machine.set_reg s (x 2) 4L;
  Machine.set_reg s (x 5) 0x8013_0000L;
  let t = Machine.copy s in
  Machine.set_reg t (x 1) 1L;
  let core = Core.create quiet in
  for _ = 1 to 5 do
    Core.reset_cache core;
    ignore (Core.run core program (Machine.copy t))
  done;
  Core.reset_cache core;
  ignore (Core.run core program (Machine.copy s));
  Alcotest.(check bool) "transient page resident" true
    (Tlb.contains (Core.tlb core) 0x8013_0000L)

let test_reset_cache_clears_tlb () =
  let core = Core.create quiet in
  let m = Machine.create () in
  Machine.set_reg m (x 0) 0x8000_0000L;
  ignore (Core.run core [| Ast.Ldr (x 1, addr (x 0) (Ast.Imm 0L)) |] m);
  Core.reset_cache core;
  Alcotest.(check (list Alcotest.int64)) "tlb cleared" [] (Tlb.snapshot (Core.tlb core))

(* ---- Mpage model and TLB attacker view ---- *)

let test_mpage_observes_page () =
  let bir =
    Scamv_models.Model.annotate (Catalog.mpage platform)
      [| Ast.Ldr (x 1, addr (x 0) (Ast.Imm 0L)) |]
  in
  let obs =
    Exec.execute bir
    |> List.concat_map (fun (l : Exec.leaf) -> l.Exec.obs)
    |> List.filter (fun (o : Obs.t) -> o.Obs.kind = "page")
  in
  Alcotest.(check Alcotest.int) "one page obs" 1 (List.length obs);
  (* Evaluate: address 0x80001234 is page 0x80001. *)
  let model =
    Scamv_smt.Model.add_var Scamv_smt.Model.empty "x0"
      (Scamv_smt.Model.Bv (0x8000_1234L, 64))
  in
  match (List.hd obs).Obs.values with
  | [ v ] ->
    Alcotest.(check Alcotest.int64) "page value" 0x80001L (Scamv_smt.Eval.eval_bv model v)
  | _ -> Alcotest.fail "one value expected"

let test_tlb_view_distinguishes_pages_only () =
  (* Two states touching different lines of the SAME page are equal for
     the TLB attacker but not the cache attacker. *)
  let program = [| Ast.Ldr (x 1, addr (x 0) (Ast.Imm 0L)) |] in
  let s1 = Machine.create () and s2 = Machine.create () in
  Machine.set_reg s1 (x 0) 0x8000_0000L;
  Machine.set_reg s2 (x 0) 0x8000_0400L (* same page, different set *);
  let experiment =
    {
      Executor.program = Scamv_arch.Isa.Aarch64_program program;
      state1 = s1;
      state2 = s2;
      train = [];
    }
  in
  let run view =
    Executor.run { (Executor.default_config ~view ()) with Executor.core = quiet } experiment
  in
  Alcotest.(check bool) "TLB attacker blind" true (run Executor.Tlb_state = Executor.Indistinguishable);
  Alcotest.(check bool) "cache attacker sees it" true
    (run Executor.Full_cache = Executor.Distinguishable)

let test_mpage_campaign_matrix () =
  (* Miniature version of examples/tlb_channel. *)
  let run setup view =
    let cfg =
      Scamv.Campaign.make ~name:"tlb matrix" ~template:Templates.stride ~setup ~view
        ~programs:6 ~tests_per_program:10 ~seed:5L ()
    in
    (Scamv.Campaign.run cfg).Scamv.Campaign.stats.Stats.counterexamples
  in
  Alcotest.(check Alcotest.int) "Mpage sound for TLB" 0
    (run (Refinement.mpage_vs_mline platform) Executor.Tlb_state);
  Alcotest.(check bool) "Mpage unsound for cache" true
    (run (Refinement.mpage_vs_mline platform) Executor.Full_cache > 0)

(* ---- Repair ---- *)

let test_repair_template_c_needs_one_load () =
  let o = Repair.run ~programs:6 ~tests_per_program:10 ~template:Templates.template_c () in
  match o.Repair.repaired with
  | Some c -> Alcotest.(check Alcotest.int) "k = 1" 1 c.Repair.observed_transient_loads
  | None -> Alcotest.fail "repair expected to converge"

let test_repair_template_b_needs_two_loads () =
  let o = Repair.run ~programs:40 ~tests_per_program:15 ~template:Templates.template_b () in
  match o.Repair.repaired with
  | Some c -> Alcotest.(check Alcotest.int) "k = 2" 2 c.Repair.observed_transient_loads
  | None -> Alcotest.fail "repair expected to converge"

let test_repair_steps_monotone () =
  let o = Repair.run ~programs:6 ~tests_per_program:10 ~template:Templates.template_c () in
  let ks =
    List.map (fun (s : Repair.step) -> s.Repair.tried.Repair.observed_transient_loads) o.Repair.steps
  in
  Alcotest.(check (list Alcotest.int)) "k increases from 0" (List.init (List.length ks) Fun.id) ks;
  (* Every step but the last must have found counterexamples. *)
  List.iteri
    (fun i (s : Repair.step) ->
      if i < List.length o.Repair.steps - 1 then
        Alcotest.(check bool) "intermediate steps unsound" false s.Repair.sound_so_far)
    o.Repair.steps

(* ---- out-of-order core ---- *)

let test_forwarding_core_issues_dependent_load () =
  let program =
    [|
      Ast.Cmp (x 1, Ast.Reg (x 2));
      Ast.B_cond (Ast.Hs, 4);
      Ast.Ldr (x 6, addr (x 5) (Ast.Imm 0L));
      Ast.Ldr (x 8, addr (x 7) (Ast.Reg (x 6)));
    |]
  in
  let s = Machine.create () in
  Machine.set_reg s (x 1) 8L;
  Machine.set_reg s (x 2) 4L;
  Machine.set_reg s (x 5) 0x8000_0000L;
  Machine.set_reg s (x 7) 0x8010_0000L;
  Machine.store s 0x8000_0000L 0x4000L;
  let t = Machine.copy s in
  Machine.set_reg t (x 1) 1L;
  let run cfg =
    let core = Core.create { cfg with Core.mispredict_noise = 0.0 } in
    for _ = 1 to 5 do
      Core.reset_cache core;
      ignore (Core.run core program (Machine.copy t))
    done;
    Core.reset_cache core;
    let events = Core.run core program (Machine.copy s) in
    List.length (List.filter (function Core.Transient_load _ -> true | _ -> false) events)
  in
  Alcotest.(check Alcotest.int) "A53: only first load" 1 (run Core.cortex_a53);
  Alcotest.(check Alcotest.int) "OoO: both loads" 2 (run Core.out_of_order)

let test_forwarding_breaks_mspec1 () =
  let run core_cfg =
    let cfg =
      Scamv.Campaign.make ~name:"fw" ~template:Templates.template_c
        ~setup:(Refinement.mspec1_vs_mspec ()) ~view:Executor.Full_cache ~programs:4
        ~tests_per_program:10 ()
    in
    let cfg =
      { cfg with
        Scamv.Campaign.executor =
          { cfg.Scamv.Campaign.executor with Executor.core = core_cfg } }
    in
    (Scamv.Campaign.run cfg).Scamv.Campaign.stats.Stats.counterexamples
  in
  Alcotest.(check Alcotest.int) "sound on A53" 0 (run Core.cortex_a53);
  Alcotest.(check bool) "unsound with forwarding" true (run Core.out_of_order > 0)

(* ---- Journal ---- *)

let sample_entry i verdict =
  {
    Journal.campaign = "c";
    program_index = i;
    test_index = 0;
    template = "A";
    isa = Scamv_arch.Isa.Aarch64;
    path_pair = (0, 0);
    verdict;
    generation_seconds = 0.25;
    execution_seconds = 0.5;
    retries = 0;
    faults = 0;
  }

let test_journal_accumulates () =
  let j = Journal.create () in
  Journal.record j (sample_entry 0 Executor.Distinguishable);
  Journal.record j (sample_entry 1 Executor.Indistinguishable);
  Journal.record j (sample_entry 2 Executor.Inconclusive);
  Alcotest.(check Alcotest.int) "length" 3 (Journal.length j);
  Alcotest.(check Alcotest.int) "counterexamples" 1 (List.length (Journal.counterexamples j));
  let d, i, u = Journal.verdict_counts j in
  Alcotest.(check (list Alcotest.int)) "counts" [ 1; 1; 1 ] [ d; i; u ]

let test_journal_csv_shape () =
  let j = Journal.create () in
  Journal.record j (sample_entry 0 Executor.Distinguishable);
  let csv = Journal.to_csv j in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check Alcotest.int) "header + 1 row" 2 (List.length lines);
  Alcotest.(check bool) "verdict in row" true
    (match lines with
    | [ _; row ] ->
      List.exists (String.equal "distinguishable") (String.split_on_char ',' row)
    | _ -> false)

let test_journal_from_campaign () =
  let j = Journal.create () in
  let cfg =
    Scamv.Campaign.make ~name:"journal test" ~template:Templates.template_c
      ~setup:(Refinement.mct_vs_mspec ()) ~programs:2 ~tests_per_program:5 ()
  in
  let outcome = Scamv.Campaign.run ~journal:j cfg in
  Alcotest.(check Alcotest.int) "journal matches stats"
    outcome.Scamv.Campaign.stats.Stats.experiments (Journal.length j);
  List.iter
    (fun (e : Journal.entry) ->
      Alcotest.(check string) "template recorded" "C" e.Journal.template)
    (Journal.entries j)

let () =
  Alcotest.run "scamv_extensions"
    [
      ( "tlb",
        [
          Alcotest.test_case "miss then hit" `Quick test_tlb_miss_then_hit;
          Alcotest.test_case "lru eviction" `Quick test_tlb_lru_eviction;
          Alcotest.test_case "lru refresh" `Quick test_tlb_lru_refresh;
          Alcotest.test_case "snapshot sorted" `Quick test_tlb_snapshot_sorted;
          Alcotest.test_case "capacity validated" `Quick test_tlb_capacity_validated;
        ] );
      ( "tlb integration",
        [
          Alcotest.test_case "loads touch tlb" `Quick test_core_loads_touch_tlb;
          Alcotest.test_case "transient loads touch tlb" `Quick test_transient_loads_touch_tlb;
          Alcotest.test_case "reset clears tlb" `Quick test_reset_cache_clears_tlb;
        ] );
      ( "mpage",
        [
          Alcotest.test_case "observes page" `Quick test_mpage_observes_page;
          Alcotest.test_case "tlb view page-granular" `Quick
            test_tlb_view_distinguishes_pages_only;
          Alcotest.test_case "campaign matrix" `Slow test_mpage_campaign_matrix;
        ] );
      ( "repair",
        [
          Alcotest.test_case "template C needs one load" `Slow
            test_repair_template_c_needs_one_load;
          Alcotest.test_case "template B needs two loads" `Slow
            test_repair_template_b_needs_two_loads;
          Alcotest.test_case "steps monotone" `Slow test_repair_steps_monotone;
        ] );
      ( "microarchitecture",
        [
          Alcotest.test_case "forwarding issues dependent load" `Quick
            test_forwarding_core_issues_dependent_load;
          Alcotest.test_case "forwarding breaks Mspec1" `Slow test_forwarding_breaks_mspec1;
        ] );
      ( "journal",
        [
          Alcotest.test_case "accumulates" `Quick test_journal_accumulates;
          Alcotest.test_case "csv shape" `Quick test_journal_csv_shape;
          Alcotest.test_case "from campaign" `Quick test_journal_from_campaign;
        ] );
    ]
