(* Deterministic worker pool, pure stats/summary merges, the JSON
   emitter, and the multicore campaign acceptance test: a seeded
   fault-injected campaign run at --jobs 4 must produce byte-identical
   journal output and identical statistics to --jobs 1. *)

module Pool = Scamv_util.Pool
module Json = Scamv_util.Json
module Summary = Scamv_util.Summary
module Stopwatch = Scamv_util.Stopwatch
module Campaign = Scamv.Campaign
module Journal = Scamv.Journal
module Retry = Scamv.Retry
module Stats = Scamv.Stats
module Sat = Scamv_smt.Sat
module Faults = Scamv_microarch.Faults
module Executor = Scamv_microarch.Executor
module Templates = Scamv_gen.Templates
module Refinement = Scamv_models.Refinement

let temp_path name =
  let path = Filename.temp_file "scamv_pool" name in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  path

(* ---- pool ---- *)

let test_pool_ordering_adversarial () =
  (* Workers finish in roughly reverse index order (later items are much
     faster), yet the consumer must still see results in index order. *)
  let tasks = 12 in
  let order = ref [] in
  Pool.run_ordered ~jobs:4 ~tasks
    ~worker:(fun i ->
      Unix.sleepf (0.002 *. float_of_int (tasks - i));
      i * i)
    ~consume:(fun i v -> order := (i, v) :: !order);
  let expected = List.init tasks (fun i -> (i, i * i)) in
  Alcotest.(check bool) "consumed in index order" true (List.rev !order = expected)

let test_pool_sequential_matches_parallel () =
  let f i = (i * 37) lxor (i lsl 3) in
  Alcotest.(check bool)
    "map jobs=1 = jobs=4" true
    (Pool.map ~jobs:1 f 50 = Pool.map ~jobs:4 f 50);
  Alcotest.(check bool)
    "map_list" true
    (Pool.map_list ~jobs:3 String.uppercase_ascii [ "a"; "b"; "c" ]
    = [ "A"; "B"; "C" ])

exception Boom of int

let test_pool_worker_exception () =
  (* An exception in one worker is re-raised at its index position after
     all earlier items were consumed, and the pool shuts down cleanly
     instead of wedging (this test completing at all checks the latter). *)
  let consumed = ref [] in
  let raised =
    try
      Pool.run_ordered ~jobs:4 ~tasks:10
        ~worker:(fun i ->
          if i = 5 then raise (Boom i);
          i)
        ~consume:(fun i _ -> consumed := i :: !consumed);
      None
    with Boom i -> Some i
  in
  Alcotest.(check (Alcotest.option Alcotest.int)) "raised at index 5" (Some 5) raised;
  Alcotest.(check (Alcotest.list Alcotest.int))
    "items before the failure were consumed in order" [ 0; 1; 2; 3; 4 ]
    (List.rev !consumed)

let test_pool_zero_tasks_and_resolve () =
  Pool.run_ordered ~jobs:4 ~tasks:0
    ~worker:(fun _ -> Alcotest.fail "no worker should run")
    ~consume:(fun _ _ -> Alcotest.fail "nothing to consume");
  Alcotest.(check bool) "0 resolves to all cores" true (Pool.resolve_jobs 0 >= 1);
  Alcotest.(check Alcotest.int) "positive passes through" 3 (Pool.resolve_jobs 3);
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Pool: jobs must be >= 0") (fun () ->
      ignore (Pool.resolve_jobs (-1)))

(* ---- supervised pool ---- *)

exception Crash of int

let run_supervised_collect ~jobs ~tasks ~crashes =
  (* Items in [crashes] raise Crash (classified fatal); the rest return
     [i * 10].  Returns (consumed results in order, restart indices). *)
  let consumed = ref [] in
  let restarts = ref [] in
  Pool.run_supervised ~jobs ~tasks
    ~fatal:(function Crash _ -> true | _ -> false)
    ~on_restart:(fun i -> restarts := i :: !restarts)
    ~worker:(fun i ->
      if List.mem i crashes then raise (Crash i);
      i * 10)
    ~consume:(fun i r ->
      let tag =
        match r with
        | Ok v -> `Ok (i, v)
        | Error { Pool.exn = Crash j; _ } -> `Crashed (i, j)
        | Error _ -> `Other i
      in
      consumed := tag :: !consumed)
    ();
  (List.rev !consumed, List.rev !restarts)

let test_supervised_crash_continues () =
  (* A fatal worker crash is delivered as that item's Error and the pool
     keeps going: every other item is still consumed, in order. *)
  let consumed, restarts =
    run_supervised_collect ~jobs:4 ~tasks:10 ~crashes:[ 3; 7 ]
  in
  let expected =
    List.init 10 (fun i ->
        if i = 3 || i = 7 then `Crashed (i, i) else `Ok (i, i * 10))
  in
  Alcotest.(check bool) "all items consumed in order" true (consumed = expected);
  Alcotest.(check (Alcotest.list Alcotest.int))
    "one restart per crashed item" [ 3; 7 ] restarts

let test_supervised_restart_count_jobs_independent () =
  (* The number (and indices) of restarts is a pure function of which
     items crashed — identical across jobs levels, including jobs = 1 and
     a crash on the very last item (no untaken work remains, the
     replacement domain exits immediately, but the restart still fires). *)
  let crashes = [ 0; 4; 9 ] in
  let results =
    List.map
      (fun jobs -> run_supervised_collect ~jobs ~tasks:10 ~crashes)
      [ 1; 2; 4; 8 ]
  in
  let first = List.hd results in
  List.iter
    (fun r -> Alcotest.(check bool) "identical across jobs" true (r = first))
    (List.tl results);
  Alcotest.(check (Alcotest.list Alcotest.int))
    "restart indices = crash indices" crashes (snd first)

let test_supervised_nonfatal_keeps_domain () =
  (* Non-fatal exceptions are delivered as Errors but never restart. *)
  let consumed = ref 0 and restarts = ref 0 in
  Pool.run_supervised ~jobs:2 ~tasks:8
    ~on_restart:(fun _ -> incr restarts)
    ~worker:(fun i -> if i mod 2 = 0 then raise (Crash i) else i)
    ~consume:(fun _ _ -> incr consumed)
    ();
  Alcotest.(check Alcotest.int) "all consumed" 8 !consumed;
  Alcotest.(check Alcotest.int) "no restarts (default fatal)" 0 !restarts

let test_supervised_backtrace_preserved () =
  (* run_ordered re-raises worker failures with the original backtrace;
     the Error cell carries it for callers that want to log it. *)
  let saw_backtrace = ref false in
  Pool.run_supervised ~jobs:1 ~tasks:1
    ~worker:(fun _ -> raise (Crash 0))
    ~consume:(fun _ r ->
      match r with
      | Error { Pool.backtrace; _ } ->
        saw_backtrace := true;
        ignore (Printexc.raw_backtrace_to_string backtrace : string)
      | Ok _ -> Alcotest.fail "expected the failure")
    ();
  Alcotest.(check bool) "failure carries a backtrace" true !saw_backtrace

let test_supervised_consume_raise_drains () =
  (* The documented drain-order contract: a raising consumer still sees
     every earlier item, no later consume happens, and the pool joins all
     domains instead of wedging (this test terminating checks that). *)
  let consumed = ref [] in
  let raised =
    try
      Pool.run_supervised ~jobs:4 ~tasks:12
        ~worker:(fun i -> i)
        ~consume:(fun i _ ->
          if i = 6 then raise (Boom i);
          consumed := i :: !consumed)
        ();
      false
    with Boom 6 -> true
  in
  Alcotest.(check bool) "consumer exception propagates" true raised;
  Alcotest.(check (Alcotest.list Alcotest.int))
    "items before the raise consumed in order" [ 0; 1; 2; 3; 4; 5 ]
    (List.rev !consumed)

(* ---- persistent pool lifecycle ---- *)

let test_persistent_pool_reuse () =
  (* One pool, several batches: same index-ordered consumption per batch,
     domains parked in between. *)
  let pool = Pool.create ~size:3 in
  Alcotest.(check Alcotest.int) "size" 3 (Pool.size pool);
  for round = 1 to 3 do
    let consumed = ref [] in
    Pool.exec pool ~tasks:8
      ~worker:(fun i -> (round * 100) + i)
      ~consume:(fun i r ->
        match r with
        | Ok v -> consumed := (i, v) :: !consumed
        | Error _ -> Alcotest.fail "unexpected failure")
      ();
    let expected = List.init 8 (fun i -> (i, (round * 100) + i)) in
    Alcotest.(check bool)
      (Printf.sprintf "round %d in order" round)
      true
      (List.rev !consumed = expected)
  done;
  Pool.shutdown pool

let test_persistent_pool_shutdown_rejects () =
  (* The documented idle-pool lifecycle: an idle pool shuts down cleanly
     (nothing ever ran on it), shutdown is idempotent, and exec afterwards
     raises Shut_down instead of wedging. *)
  let pool = Pool.create ~size:2 in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (match
     Pool.exec pool ~tasks:1
       ~worker:(fun i -> i)
       ~consume:(fun _ _ -> Alcotest.fail "must not run")
       ()
   with
  | () -> Alcotest.fail "exec after shutdown succeeded"
  | exception Pool.Shut_down -> ());
  (* size-1 pools have no domains but follow the same lifecycle *)
  let seq = Pool.create ~size:1 in
  let got = ref [] in
  Pool.exec seq ~tasks:3 ~worker:(fun i -> i) ~consume:(fun i _ -> got := i :: !got) ();
  Pool.shutdown seq;
  Alcotest.(check (Alcotest.list Alcotest.int)) "inline batch ran" [ 0; 1; 2 ]
    (List.rev !got);
  match Pool.exec seq ~tasks:1 ~worker:(fun i -> i) ~consume:(fun _ _ -> ()) () with
  | () -> Alcotest.fail "exec after shutdown succeeded (size 1)"
  | exception Pool.Shut_down -> ()

let test_persistent_pool_crash_respawn () =
  (* Fatal failures on a persistent pool respawn domains that park in the
     idle pool, and the next batch still works. *)
  let pool = Pool.create ~size:2 in
  let restarts = ref [] in
  let ok = ref 0 in
  Pool.exec pool ~tasks:6
    ~fatal:(function Crash _ -> true | _ -> false)
    ~on_restart:(fun i -> restarts := i :: !restarts)
    ~worker:(fun i -> if i = 2 || i = 5 then raise (Crash i) else i)
    ~consume:(fun _ r -> match r with Ok _ -> incr ok | Error _ -> ())
    ();
  Alcotest.(check (Alcotest.list Alcotest.int)) "restarts" [ 2; 5 ] (List.rev !restarts);
  Alcotest.(check Alcotest.int) "survivors" 4 !ok;
  let consumed = ref 0 in
  Pool.exec pool ~tasks:5 ~worker:(fun i -> i) ~consume:(fun _ _ -> incr consumed) ();
  Alcotest.(check Alcotest.int) "next batch runs" 5 !consumed;
  Pool.shutdown pool

let test_persistent_pool_consumer_abort_reusable () =
  (* A raising consumer cancels the batch but leaves the pool usable. *)
  let pool = Pool.create ~size:4 in
  (try
     Pool.exec pool ~tasks:10
       ~worker:(fun i -> i)
       ~consume:(fun i _ -> if i = 3 then raise (Boom i))
       ()
   with Boom 3 -> ());
  let consumed = ref 0 in
  Pool.exec pool ~tasks:7 ~worker:(fun i -> i) ~consume:(fun _ _ -> incr consumed) ();
  Alcotest.(check Alcotest.int) "pool reusable after abort" 7 !consumed;
  Pool.shutdown pool

(* ---- sliced pools (concurrent campaign scheduler) ---- *)

let test_slice_widths_partition () =
  (* Even split with the remainder on the low slices; never below 1 even
     when oversubscribed; a pure function of (total, slices). *)
  Alcotest.(check (Alcotest.array Alcotest.int)) "even" [| 2; 2 |]
    (Pool.slice_widths ~total:4 ~slices:2);
  Alcotest.(check (Alcotest.array Alcotest.int)) "remainder low" [| 3; 2; 2 |]
    (Pool.slice_widths ~total:7 ~slices:3);
  Alcotest.(check (Alcotest.array Alcotest.int)) "oversubscribed floors at 1"
    [| 1; 1; 1; 1 |]
    (Pool.slice_widths ~total:2 ~slices:4);
  Alcotest.(check (Alcotest.array Alcotest.int)) "single slice takes all" [| 5 |]
    (Pool.slice_widths ~total:5 ~slices:1);
  for total = 1 to 9 do
    for slices = 1 to 5 do
      let w = Pool.slice_widths ~total ~slices in
      Alcotest.(check Alcotest.int) "one width per slice" slices (Array.length w);
      Array.iter
        (fun x -> Alcotest.(check bool) "at least 1" true (x >= 1))
        w;
      if total >= slices then
        Alcotest.(check Alcotest.int) "partitions the budget" total
          (Array.fold_left ( + ) 0 w)
    done
  done;
  Alcotest.check_raises "zero slices rejected"
    (Invalid_argument "Pool.slice_widths: slices must be >= 1") (fun () ->
      ignore (Pool.slice_widths ~total:4 ~slices:0))

let test_sliced_pool_independent_batches () =
  (* Each slice is a full persistent pool: index-ordered batches run on
     different slices concurrently without interleaving results. *)
  let sl = Pool.create_sliced ~total:4 ~slices:2 in
  Alcotest.(check Alcotest.int) "slices" 2 (Pool.slice_count sl);
  Alcotest.(check Alcotest.int) "slice 0 width" 2 (Pool.slice_width sl 0);
  Alcotest.(check Alcotest.int) "slice 1 width" 2 (Pool.slice_width sl 1);
  let run slot =
    let consumed = ref [] in
    Pool.exec (Pool.slice sl slot) ~tasks:6
      ~worker:(fun i -> (slot * 100) + i)
      ~consume:(fun i r ->
        match r with
        | Ok v -> consumed := (i, v) :: !consumed
        | Error _ -> Alcotest.fail "unexpected failure")
      ();
    List.rev !consumed
  in
  let results = Array.make 2 [] in
  let threads =
    List.init 2 (fun slot ->
        Thread.create (fun () -> results.(slot) <- run slot) ())
  in
  List.iter Thread.join threads;
  for slot = 0 to 1 do
    let expected = List.init 6 (fun i -> (i, (slot * 100) + i)) in
    Alcotest.(check bool)
      (Printf.sprintf "slot %d ordered" slot)
      true
      (results.(slot) = expected)
  done;
  Pool.shutdown_sliced sl;
  (* idempotent, and every slice now rejects work *)
  Pool.shutdown_sliced sl;
  match
    Pool.exec (Pool.slice sl 0) ~tasks:1 ~worker:(fun i -> i)
      ~consume:(fun _ _ -> ())
      ()
  with
  | () -> Alcotest.fail "exec on a shut-down slice succeeded"
  | exception Pool.Shut_down -> ()

(* ---- Summary.merge / Stats.merge ---- *)

let summary_of = List.fold_left Summary.add Summary.empty

let test_summary_merge () =
  let a = summary_of [ 1.0; 5.0 ] and b = summary_of [ 0.5; 2.0; 3.0 ] in
  let m = Summary.merge a b in
  Alcotest.(check Alcotest.int) "count" 5 (Summary.count m);
  Alcotest.(check (Alcotest.float 1e-9)) "total" 11.5 (Summary.total m);
  Alcotest.(check (Alcotest.float 1e-9)) "min" 0.5 (Summary.min_value m);
  Alcotest.(check (Alcotest.float 1e-9)) "max" 5.0 (Summary.max_value m);
  Alcotest.(check bool) "empty is left identity" true (Summary.merge Summary.empty a = a);
  Alcotest.(check bool) "empty is right identity" true (Summary.merge a Summary.empty = a)

let test_stats_merge () =
  let s1 =
    Stats.record_experiment Stats.empty ~verdict:Executor.Distinguishable ~retries:1
      ~faults:2 ~gen_seconds:0.5 ~exe_seconds:0.25 ~elapsed:10.0 ()
  in
  let s1 = Stats.record_program s1 ~found_counterexample:true in
  let s2 =
    Stats.record_experiment Stats.empty ~verdict:Executor.Inconclusive ~gen_seconds:1.5
      ~exe_seconds:0.75 ~elapsed:4.0 ()
  in
  let s2 = Stats.record_quarantine (Stats.record_program s2 ~found_counterexample:false) in
  let m = Stats.merge s1 s2 in
  Alcotest.(check Alcotest.int) "programs" 2 m.Stats.programs;
  Alcotest.(check Alcotest.int) "experiments" 2 m.Stats.experiments;
  Alcotest.(check Alcotest.int) "counterexamples" 1 m.Stats.counterexamples;
  Alcotest.(check Alcotest.int) "inconclusive" 1 m.Stats.inconclusive;
  Alcotest.(check Alcotest.int) "quarantines" 1 m.Stats.budget_exceeded;
  Alcotest.(check Alcotest.int) "retries" 1 m.Stats.retries;
  Alcotest.(check Alcotest.int) "faults" 2 m.Stats.faults_observed;
  Alcotest.(check Alcotest.int) "gen samples" 2 (Summary.count m.Stats.generation_time);
  Alcotest.(check (Alcotest.float 1e-9))
    "gen total" 2.0
    (Summary.total m.Stats.generation_time);
  (* ttc: earliest counterexample wins, and only s1 has one. *)
  Alcotest.(check (Alcotest.option (Alcotest.float 1e-9)))
    "ttc from the counterexample side" (Some 10.0)
    m.Stats.time_to_first_counterexample;
  Alcotest.(check bool) "merge commutes" true (Stats.merge s2 s1 = m);
  Alcotest.(check bool) "empty is identity" true (Stats.merge Stats.empty s1 = s1)

(* ---- JSON ---- *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("s", Json.Str "a \"quoted\"\nline");
        ("n", Json.Num 2.5);
        ("i", Json.Num 42.);
        ("b", Json.Bool true);
        ("z", Json.Null);
        ("l", Json.Arr [ Json.Num 1.; Json.Str "x"; Json.Obj [] ]);
      ]
  in
  Alcotest.(check bool)
    "compact round-trips" true
    (Json.of_string (Json.to_string doc) = doc);
  Alcotest.(check bool)
    "pretty round-trips" true
    (Json.of_string (Json.to_string ~pretty:true doc) = doc);
  Alcotest.(check bool)
    "integral numbers print without decimals" true
    (Json.to_string (Json.Num 42.) = "42")

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "accepted garbage %S" s))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "\"unterminated"; "1 2" ]

(* ---- multicore campaign determinism (the PR's acceptance criterion) ---- *)

let noisy_cfg ~clock () =
  Campaign.make ~name:"parallel determinism"
    ~template:(Templates.by_name "A")
    ~setup:(Refinement.mct_vs_mspec ())
    ~programs:6 ~tests_per_program:3 ~seed:2021L
    ~sat_budget:(Sat.budget ~conflicts:100 ())
    ~retry:(Retry.make ~max_attempts:3 ())
    ~faults:(Faults.config ~rate:0.1 ~seed:7L ())
    ~clock ()

let run_with_jobs jobs =
  (* The frozen clock zeroes every measured duration, making the run's
     observable output (journal CSV, stats, progress lines) a pure
     function of the campaign seed — so "identical" below means
     byte-identical, not merely equal modulo timings. *)
  let cfg = noisy_cfg ~clock:Stopwatch.frozen () in
  let path = temp_path (Printf.sprintf ".jobs%d.csv" jobs) in
  let journal = Journal.create ~path () in
  let events = ref [] in
  let outcome =
    Campaign.run ~on_event:(fun m -> events := m :: !events) ~journal ~jobs cfg
  in
  Journal.close journal;
  let csv = In_channel.with_open_bin path In_channel.input_all in
  (csv, outcome.Campaign.stats, List.rev !events)

let test_campaign_jobs4_identical_to_jobs1 () =
  let csv1, stats1, events1 = run_with_jobs 1 in
  let csv4, stats4, events4 = run_with_jobs 4 in
  Alcotest.(check bool) "campaign produced experiments" true (stats1.Stats.experiments > 0);
  Alcotest.(check bool) "journal is non-trivial" true (String.length csv1 > 100);
  Alcotest.(check string) "journal CSV byte-identical" csv1 csv4;
  Alcotest.(check bool) "final stats identical" true (stats1 = stats4);
  Alcotest.(check (Alcotest.list Alcotest.string)) "progress events identical" events1
    events4

let () =
  Alcotest.run "scamv_pool"
    [
      ( "pool",
        [
          Alcotest.test_case "ordering under adversarial delays" `Quick
            test_pool_ordering_adversarial;
          Alcotest.test_case "parallel matches sequential" `Quick
            test_pool_sequential_matches_parallel;
          Alcotest.test_case "worker exception doesn't wedge" `Quick
            test_pool_worker_exception;
          Alcotest.test_case "zero tasks and resolve_jobs" `Quick
            test_pool_zero_tasks_and_resolve;
        ] );
      ( "supervised",
        [
          Alcotest.test_case "crash becomes Error, pool continues" `Quick
            test_supervised_crash_continues;
          Alcotest.test_case "restart count jobs-independent" `Quick
            test_supervised_restart_count_jobs_independent;
          Alcotest.test_case "non-fatal keeps domain" `Quick
            test_supervised_nonfatal_keeps_domain;
          Alcotest.test_case "failure carries backtrace" `Quick
            test_supervised_backtrace_preserved;
          Alcotest.test_case "raising consumer drains cleanly" `Quick
            test_supervised_consume_raise_drains;
        ] );
      ( "persistent",
        [
          Alcotest.test_case "batches reuse parked domains" `Quick
            test_persistent_pool_reuse;
          Alcotest.test_case "idle lifecycle / shutdown rejects exec" `Quick
            test_persistent_pool_shutdown_rejects;
          Alcotest.test_case "crash respawn, next batch runs" `Quick
            test_persistent_pool_crash_respawn;
          Alcotest.test_case "consumer abort leaves pool reusable" `Quick
            test_persistent_pool_consumer_abort_reusable;
        ] );
      ( "sliced",
        [
          Alcotest.test_case "slice_widths partitions deterministically" `Quick
            test_slice_widths_partition;
          Alcotest.test_case "slices run independent ordered batches" `Quick
            test_sliced_pool_independent_batches;
        ] );
      ( "merge",
        [
          Alcotest.test_case "Summary.merge" `Quick test_summary_merge;
          Alcotest.test_case "Stats.merge" `Quick test_stats_merge;
        ] );
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "jobs=4 identical to jobs=1" `Quick
            test_campaign_jobs4_identical_to_jobs1;
        ] );
    ]
