(* Journal round-trip, incremental persistence, retry policy and fault
   injection: the robustness layer's unit tests. *)

module Executor = Scamv_microarch.Executor
module Faults = Scamv_microarch.Faults
module Campaign = Scamv.Campaign
module Journal = Scamv.Journal
module Retry = Scamv.Retry
module Stats = Scamv.Stats
module Sat = Scamv_smt.Sat
module Templates = Scamv_gen.Templates
module Refinement = Scamv_models.Refinement

let entry ?(campaign = "c") ?(template = "A") ?(retries = 0) ?(faults = 0) i verdict =
  {
    Journal.campaign;
    program_index = i;
    test_index = i * 2;
    template;
    path_pair = (i, i + 1);
    verdict;
    generation_seconds = 0.125 +. float_of_int i;
    execution_seconds = 0.5;
    retries;
    faults;
  }

let events_equal j1 j2 =
  Alcotest.(check Alcotest.int)
    "event count" (List.length (Journal.events j1))
    (List.length (Journal.events j2));
  List.iter2
    (fun a b -> Alcotest.(check bool) "event round-trips" true (a = b))
    (Journal.events j1) (Journal.events j2)

(* ---- CSV round-trip ---- *)

let test_roundtrip_plain () =
  let j = Journal.create () in
  Journal.record j (entry 0 Executor.Distinguishable);
  Journal.record j (entry ~retries:2 ~faults:3 1 Executor.Indistinguishable);
  Journal.record j (entry 2 Executor.Inconclusive);
  events_equal j (Journal.of_csv (Journal.to_csv j))

let test_roundtrip_quoting () =
  (* Campaign/template names with commas, quotes and even newlines must
     survive the CSV round trip unchanged. *)
  let j = Journal.create () in
  Journal.record j
    (entry ~campaign:"mct, refined \"v2\"" ~template:"A,B\"C\"" 0
       Executor.Distinguishable);
  Journal.record j (entry ~campaign:"multi\nline" 1 Executor.Inconclusive);
  let j' = Journal.of_csv (Journal.to_csv j) in
  events_equal j j';
  match Journal.entries j' with
  | [ e0; e1 ] ->
    Alcotest.(check string) "commas+quotes" "mct, refined \"v2\"" e0.Journal.campaign;
    Alcotest.(check string) "template quoting" "A,B\"C\"" e0.Journal.template;
    Alcotest.(check string) "newline" "multi\nline" e1.Journal.campaign
  | _ -> Alcotest.fail "expected two entries"

let test_roundtrip_fault_events () =
  let j = Journal.create () in
  Journal.record j (entry 0 Executor.Distinguishable);
  Journal.record_event j
    (Journal.Quarantined
       {
         campaign = "c";
         program_index = 0;
         pair = (3, 7);
         reason = "SAT budget exceeded, \"hard\" pair";
       });
  Journal.record_event j
    (Journal.Program_failed
       { campaign = "c"; program_index = 1; reason = "Failure(\"synth, diverged\")" });
  let j' = Journal.of_csv (Journal.to_csv j) in
  events_equal j j';
  Alcotest.(check Alcotest.int) "experiments only" 1 (Journal.length j')

let test_of_csv_rejects_garbage () =
  Alcotest.check_raises "missing header" (Journal.Parse_error "missing journal CSV header")
    (fun () -> ignore (Journal.of_csv "not,a,journal\n1,2,3\n"))

(* ---- incremental persistence ---- *)

let temp_path name =
  let path = Filename.temp_file "scamv_journal" name in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  path

let test_incremental_persistence () =
  let path = temp_path ".csv" in
  let j = Journal.create ~path () in
  Journal.record j (entry 0 Executor.Distinguishable);
  Journal.record j (entry 1 Executor.Inconclusive);
  (* Rows are flushed as they are recorded: the on-disk checkpoint must be
     loadable *before* the journal is closed, as after a kill. *)
  let loaded = Journal.read_csv ~path in
  events_equal j loaded;
  Journal.record_event j
    (Journal.Quarantined
       { campaign = "c"; program_index = 2; pair = (0, 1); reason = "budget" });
  Journal.close j;
  events_equal j (Journal.read_csv ~path)

(* ---- retry policy ---- *)

let scripted verdicts =
  let calls = ref 0 in
  let run ~attempt =
    incr calls;
    (List.nth verdicts (min attempt (List.length verdicts - 1)), 0)
  in
  (run, calls)

let test_retry_first_conclusive_wins () =
  let run, calls = scripted [ Executor.Indistinguishable ] in
  let o = Retry.execute (Retry.make ~max_attempts:5 ()) run in
  Alcotest.(check bool) "verdict" true (o.Retry.verdict = Executor.Indistinguishable);
  Alcotest.(check Alcotest.int) "one attempt" 1 !calls;
  Alcotest.(check Alcotest.int) "no retries" 0 o.Retry.retries

let test_retry_on_inconclusive () =
  let run, calls =
    scripted [ Executor.Inconclusive; Executor.Inconclusive; Executor.Distinguishable ]
  in
  let o = Retry.execute (Retry.make ~max_attempts:5 ()) run in
  Alcotest.(check bool) "recovered" true (o.Retry.verdict = Executor.Distinguishable);
  Alcotest.(check Alcotest.int) "three attempts" 3 !calls;
  Alcotest.(check Alcotest.int) "two retries" 2 o.Retry.retries

let test_retry_persistent_noise_downgrades () =
  let run, calls = scripted [ Executor.Inconclusive ] in
  let o = Retry.execute (Retry.make ~max_attempts:4 ()) run in
  Alcotest.(check bool) "inconclusive" true (o.Retry.verdict = Executor.Inconclusive);
  Alcotest.(check Alcotest.int) "all attempts used" 4 !calls

let test_retry_majority_vote_disagreement () =
  (* D, I, I with confirm=2: indistinguishable wins the vote. *)
  let run, _ =
    scripted [ Executor.Distinguishable; Executor.Indistinguishable; Executor.Indistinguishable ]
  in
  let o = Retry.execute (Retry.make ~max_attempts:3 ~confirm:2 ()) run in
  Alcotest.(check bool) "majority" true (o.Retry.verdict = Executor.Indistinguishable);
  (* D, I with confirm=2 and only two attempts: a tie stays Inconclusive. *)
  let run, _ = scripted [ Executor.Distinguishable; Executor.Indistinguishable ] in
  let o = Retry.execute (Retry.make ~max_attempts:2 ~confirm:2 ()) run in
  Alcotest.(check bool) "tie downgrades" true (o.Retry.verdict = Executor.Inconclusive)

let test_retry_exponential_budget () =
  (* Attempts cost 1, 2, 4, ...: a budget of 3 admits exactly 2 attempts
     however large max_attempts is. *)
  let run, calls = scripted [ Executor.Inconclusive ] in
  let o = Retry.execute (Retry.make ~max_attempts:100 ~attempt_budget:3 ()) run in
  Alcotest.(check Alcotest.int) "budget admits two attempts" 2 !calls;
  Alcotest.(check bool) "still inconclusive" true (o.Retry.verdict = Executor.Inconclusive)

let test_retry_rejects_bad_policy () =
  Alcotest.(check bool) "max_attempts >= 1" true
    (try
       ignore (Retry.make ~max_attempts:0 ());
       false
     with Invalid_argument _ -> true)

(* ---- fault injection ---- *)

let sample_view = [ (0, [ 1L; 2L ]); (1, [ 3L ]); (2, []) ]

let test_faults_rate_zero_is_identity () =
  let f = Faults.start (Faults.config ~rate:0.0 ()) ~run_seed:42L in
  for _ = 1 to 100 do
    match Faults.apply f sample_view with
    | Some v when v = sample_view -> ()
    | _ -> Alcotest.fail "rate 0.0 must never inject"
  done;
  Alcotest.(check Alcotest.int) "no faults" 0 (Faults.injected f)

let test_faults_rate_one_always_injects () =
  let f = Faults.start (Faults.config ~rate:1.0 ~seed:9L ()) ~run_seed:1L in
  for _ = 1 to 50 do
    match Faults.apply f sample_view with
    | None -> () (* dropped *)
    | Some v ->
      Alcotest.(check bool) "perturbed or polluted" false (v = sample_view)
  done;
  Alcotest.(check Alcotest.int) "every measurement faulted" 50 (Faults.injected f)

let test_faults_deterministic () =
  let stream seed =
    let f = Faults.start (Faults.config ~rate:0.5 ~seed:11L ()) ~run_seed:seed in
    List.init 64 (fun _ -> Faults.apply f sample_view)
  in
  Alcotest.(check bool) "same seed, same faults" true (stream 5L = stream 5L);
  Alcotest.(check bool) "different seed, different faults" false (stream 5L = stream 6L)

let test_faults_config_validation () =
  Alcotest.(check bool) "rate out of range rejected" true
    (try
       ignore (Faults.config ~rate:1.5 ());
       false
     with Invalid_argument _ -> true)

(* ---- campaign robustness (the PR's acceptance criteria) ---- *)

let noisy_cfg ?sat_budget ~programs ~tests () =
  Campaign.make ~name:"noisy"
    ~template:(Templates.by_name "A")
    ~setup:(Refinement.mct_vs_mspec ())
    ~programs ~tests_per_program:tests ~seed:2021L ?sat_budget
    ~retry:(Retry.make ~max_attempts:3 ())
    ~faults:(Faults.config ~rate:0.1 ~seed:7L ())
    ()

let counts (s : Stats.t) =
  ( s.Stats.programs,
    s.Stats.programs_with_counterexample,
    s.Stats.experiments,
    s.Stats.counterexamples,
    s.Stats.inconclusive,
    s.Stats.skipped_programs,
    s.Stats.budget_exceeded,
    s.Stats.retries,
    s.Stats.faults_observed )

(* Events minus their timing fields, which legitimately differ between an
   original and a resumed run. *)
let event_key = function
  | Journal.Experiment e ->
    `Experiment
      ( e.Journal.program_index,
        e.Journal.test_index,
        e.Journal.path_pair,
        e.Journal.verdict,
        e.Journal.retries,
        e.Journal.faults )
  | Journal.Quarantined { program_index; pair; _ } -> `Quarantined (program_index, pair)
  | Journal.Program_failed { program_index; reason; _ } -> `Failed (program_index, reason)

let test_campaign_noisy_budgeted_completes () =
  (* A seeded campaign with 10% fault injection and a tight SAT budget must
     complete without raising, retry noisy experiments, and quarantine
     budget-blown path pairs. *)
  let cfg =
    noisy_cfg ~sat_budget:(Sat.budget ~conflicts:100 ()) ~programs:6 ~tests:4 ()
  in
  let outcome = Campaign.run cfg in
  let s = outcome.Campaign.stats in
  Alcotest.(check Alcotest.int) "all programs accounted for" 6 s.Stats.programs;
  Alcotest.(check bool) "experiments ran" true (s.Stats.experiments > 0);
  Alcotest.(check bool) "nonzero retries" true (s.Stats.retries > 0);
  Alcotest.(check bool) "nonzero budget_exceeded" true (s.Stats.budget_exceeded > 0);
  Alcotest.(check bool) "faults observed" true (s.Stats.faults_observed > 0)

let test_campaign_resume_matches_uninterrupted () =
  let cfg =
    noisy_cfg ~sat_budget:(Sat.budget ~conflicts:100 ()) ~programs:5 ~tests:3 ()
  in
  let full_journal = Journal.create () in
  let full = Campaign.run ~journal:full_journal cfg in
  let events = Journal.events full_journal in
  (* Simulate a kill partway through program 2: the checkpoint holds all
     events of programs 0-1 plus the first event of program 2. *)
  let seen_two = ref false in
  let partial =
    List.filter
      (fun ev ->
        let i = Journal.event_program_index ev in
        if i < 2 then true
        else if i = 2 && not !seen_two then begin
          seen_two := true;
          true
        end
        else false)
      events
  in
  Alcotest.(check bool) "kill point is mid-campaign" true !seen_two;
  let ckpt = Journal.create () in
  List.iter (Journal.record_event ckpt) partial;
  let path = temp_path ".ckpt.csv" in
  Journal.write_csv ckpt ~path;
  let resumed_journal = Journal.create () in
  let resumed = Campaign.run ~journal:resumed_journal ~resume:path cfg in
  Alcotest.(check bool) "final stats identical" true
    (counts full.Campaign.stats = counts resumed.Campaign.stats);
  Alcotest.(check bool) "event sequence identical" true
    (List.map event_key (Journal.events full_journal)
    = List.map event_key (Journal.events resumed_journal))

let test_campaign_resume_from_missing_file_is_fresh_run () =
  let cfg = noisy_cfg ~programs:2 ~tests:2 () in
  let fresh = Campaign.run cfg in
  let resumed = Campaign.run ~resume:"/nonexistent/journal.csv" cfg in
  Alcotest.(check bool) "identical stats" true
    (counts fresh.Campaign.stats = counts resumed.Campaign.stats)

let () =
  Alcotest.run "scamv_journal"
    [
      ( "csv",
        [
          Alcotest.test_case "round-trip plain" `Quick test_roundtrip_plain;
          Alcotest.test_case "round-trip quoting" `Quick test_roundtrip_quoting;
          Alcotest.test_case "round-trip fault events" `Quick test_roundtrip_fault_events;
          Alcotest.test_case "rejects garbage" `Quick test_of_csv_rejects_garbage;
          Alcotest.test_case "incremental persistence" `Quick test_incremental_persistence;
        ] );
      ( "retry",
        [
          Alcotest.test_case "first conclusive wins" `Quick test_retry_first_conclusive_wins;
          Alcotest.test_case "retries on inconclusive" `Quick test_retry_on_inconclusive;
          Alcotest.test_case "persistent noise downgrades" `Quick
            test_retry_persistent_noise_downgrades;
          Alcotest.test_case "majority vote" `Quick test_retry_majority_vote_disagreement;
          Alcotest.test_case "exponential budget" `Quick test_retry_exponential_budget;
          Alcotest.test_case "rejects bad policy" `Quick test_retry_rejects_bad_policy;
        ] );
      ( "faults",
        [
          Alcotest.test_case "rate 0 identity" `Quick test_faults_rate_zero_is_identity;
          Alcotest.test_case "rate 1 injects" `Quick test_faults_rate_one_always_injects;
          Alcotest.test_case "deterministic" `Quick test_faults_deterministic;
          Alcotest.test_case "config validation" `Quick test_faults_config_validation;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "noisy+budgeted completes" `Quick
            test_campaign_noisy_budgeted_completes;
          Alcotest.test_case "resume matches uninterrupted" `Quick
            test_campaign_resume_matches_uninterrupted;
          Alcotest.test_case "resume from missing file" `Quick
            test_campaign_resume_from_missing_file_is_fresh_run;
        ] );
    ]
