(* Journal round-trip, incremental persistence, retry policy and fault
   injection: the robustness layer's unit tests. *)

module Executor = Scamv_microarch.Executor
module Faults = Scamv_microarch.Faults
module Campaign = Scamv.Campaign
module Journal = Scamv.Journal
module Retry = Scamv.Retry
module Stats = Scamv.Stats
module Sat = Scamv_smt.Sat
module Templates = Scamv_gen.Templates
module Refinement = Scamv_models.Refinement

let entry ?(campaign = "c") ?(template = "A") ?(retries = 0) ?(faults = 0)
    ?(isa = Scamv_arch.Isa.Aarch64) i verdict =
  {
    Journal.campaign;
    program_index = i;
    test_index = i * 2;
    template;
    isa;
    path_pair = (i, i + 1);
    verdict;
    generation_seconds = 0.125 +. float_of_int i;
    execution_seconds = 0.5;
    retries;
    faults;
  }

let events_equal j1 j2 =
  Alcotest.(check Alcotest.int)
    "event count" (List.length (Journal.events j1))
    (List.length (Journal.events j2));
  List.iter2
    (fun a b -> Alcotest.(check bool) "event round-trips" true (a = b))
    (Journal.events j1) (Journal.events j2)

(* ---- CSV round-trip ---- *)

let test_roundtrip_plain () =
  let j = Journal.create () in
  Journal.record j (entry 0 Executor.Distinguishable);
  Journal.record j (entry ~retries:2 ~faults:3 1 Executor.Indistinguishable);
  Journal.record j (entry 2 Executor.Inconclusive);
  events_equal j (Journal.of_csv (Journal.to_csv j))

let test_roundtrip_quoting () =
  (* Campaign/template names with commas, quotes and even newlines must
     survive the CSV round trip unchanged. *)
  let j = Journal.create () in
  Journal.record j
    (entry ~campaign:"mct, refined \"v2\"" ~template:"A,B\"C\"" 0
       Executor.Distinguishable);
  Journal.record j (entry ~campaign:"multi\nline" 1 Executor.Inconclusive);
  let j' = Journal.of_csv (Journal.to_csv j) in
  events_equal j j';
  match Journal.entries j' with
  | [ e0; e1 ] ->
    Alcotest.(check string) "commas+quotes" "mct, refined \"v2\"" e0.Journal.campaign;
    Alcotest.(check string) "template quoting" "A,B\"C\"" e0.Journal.template;
    Alcotest.(check string) "newline" "multi\nline" e1.Journal.campaign
  | _ -> Alcotest.fail "expected two entries"

let test_roundtrip_fault_events () =
  let j = Journal.create () in
  Journal.record j (entry 0 Executor.Distinguishable);
  Journal.record_event j
    (Journal.Quarantined
       {
         campaign = "c";
         program_index = 0;
         pair = (3, 7);
         reason = "SAT budget exceeded, \"hard\" pair";
       });
  Journal.record_event j
    (Journal.Program_failed
       { campaign = "c"; program_index = 1; reason = "Failure(\"synth, diverged\")" });
  let j' = Journal.of_csv (Journal.to_csv j) in
  events_equal j j';
  Alcotest.(check Alcotest.int) "experiments only" 1 (Journal.length j')

let test_of_csv_rejects_garbage () =
  Alcotest.check_raises "missing header" (Journal.Parse_error "missing journal CSV header")
    (fun () -> ignore (Journal.of_csv "not,a,journal\n1,2,3\n"))

(* ---- incremental persistence ---- *)

let temp_path name =
  let path = Filename.temp_file "scamv_journal" name in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  path

let test_incremental_persistence () =
  let path = temp_path ".csv" in
  let j = Journal.create ~path () in
  Journal.record j (entry 0 Executor.Distinguishable);
  Journal.record j (entry 1 Executor.Inconclusive);
  (* Rows are flushed as they are recorded: the on-disk checkpoint must be
     loadable *before* the journal is closed, as after a kill. *)
  let loaded = Journal.read_csv ~path in
  events_equal j loaded;
  Journal.record_event j
    (Journal.Quarantined
       { campaign = "c"; program_index = 2; pair = (0, 1); reason = "budget" });
  Journal.close j;
  events_equal j (Journal.read_csv ~path)

(* ---- crash-safe journal format (v2) ---- *)

let v2_fixture () =
  (* A persisted v2 journal with four records, as a killed campaign would
     leave behind (including a Crashed event). *)
  let path = temp_path ".journal" in
  let j = Journal.create ~path () in
  Journal.record j (entry 0 Executor.Distinguishable);
  Journal.record j (entry 1 Executor.Indistinguishable);
  Journal.record_event j
    (Journal.Crashed { campaign = "c"; program_index = 2; reason = "worker killed" });
  Journal.record j (entry 3 Executor.Inconclusive);
  Journal.close j;
  path

let read_file path = In_channel.with_open_bin path In_channel.input_all
let write_file path s = Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let test_v2_roundtrip () =
  let path = v2_fixture () in
  let j, recovery = Journal.load ~path in
  Alcotest.(check Alcotest.int) "all records recovered" 4 recovery.Journal.records;
  Alcotest.(check Alcotest.int) "nothing dropped" 0 recovery.Journal.dropped_bytes;
  Alcotest.(check Alcotest.int) "four events" 4 (List.length (Journal.events j));
  (match Journal.events j with
  | [ _; _; Journal.Crashed { program_index; reason; _ }; _ ] ->
    Alcotest.(check Alcotest.int) "crashed index" 2 program_index;
    Alcotest.(check string) "crashed reason" "worker killed" reason
  | _ -> Alcotest.fail "crashed event lost");
  (* read_csv (strict) also auto-detects the v2 format on a clean file. *)
  events_equal j (Journal.read_csv ~path)

let test_v2_truncated_final_record_recovers () =
  let path = v2_fixture () in
  let whole = read_file path in
  write_file path (String.sub whole 0 (String.length whole - 5));
  let j, recovery = Journal.load ~path in
  Alcotest.(check Alcotest.int) "clean prefix kept" 3 recovery.Journal.records;
  Alcotest.(check bool) "drop reported" true (recovery.Journal.dropped_bytes > 0);
  Alcotest.(check Alcotest.int) "three events" 3 (List.length (Journal.events j));
  (* The strict loader refuses the same file. *)
  match Journal.read_csv ~path with
  | exception Journal.Parse_error _ -> ()
  | _ -> Alcotest.fail "strict read accepted a torn tail"

let test_v2_flipped_checksum_byte_recovers () =
  let path = v2_fixture () in
  let whole = read_file path in
  (* Flip one payload byte of the final record: its checksum no longer
     matches, so recovery must drop it (and only it). *)
  let b = Bytes.of_string whole in
  let pos = Bytes.length b - 3 in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x01));
  write_file path (Bytes.to_string b);
  let j, recovery = Journal.load ~path in
  Alcotest.(check Alcotest.int) "clean prefix kept" 3 recovery.Journal.records;
  Alcotest.(check bool) "drop reported" true (recovery.Journal.dropped_bytes > 0);
  Alcotest.(check Alcotest.int) "three events" 3 (List.length (Journal.events j))

let test_v2_zero_length_file_recovers () =
  let path = temp_path ".journal" in
  write_file path "";
  let j, recovery = Journal.load ~path in
  Alcotest.(check Alcotest.int) "no records" 0 recovery.Journal.records;
  Alcotest.(check Alcotest.int) "no events" 0 (List.length (Journal.events j))

let test_isa_tail_compat () =
  (* The `isa` column is a tail extension: AArch64 rows keep the original
     13 fields byte-for-byte (so pre-ISA journals load as AArch64), RISC-V
     rows append a 14th, and both round-trip with the ISA preserved. *)
  let has_sub s sub =
    let n = String.length sub and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  let path = temp_path ".isa" in
  let j = Journal.create ~path () in
  Journal.record j (entry 0 Executor.Distinguishable);
  Journal.record j (entry ~isa:Scamv_arch.Isa.Riscv 1 Executor.Inconclusive);
  Journal.record_event j
    (Journal.Diverged
       {
         campaign = "c";
         program_index = 2;
         pair = (0, 1);
         aarch64 = Executor.Distinguishable;
         riscv = Executor.Indistinguishable;
       });
  Journal.close j;
  let bytes = read_file path in
  let rows = String.split_on_char '\n' bytes in
  let aarch64_row =
    List.find (fun r -> has_sub r "experiment,0") rows
  and riscv_row = List.find (fun r -> has_sub r "experiment,1") rows in
  Alcotest.(check bool) "aarch64 row keeps 13 fields" false
    (has_sub aarch64_row ",riscv");
  Alcotest.(check bool) "riscv row carries the isa tail" true
    (has_sub riscv_row ",riscv");
  let loaded, recovery = Journal.load ~path in
  Alcotest.(check Alcotest.int) "all records recovered" 3 recovery.Journal.records;
  events_equal j loaded;
  (match Journal.entries loaded with
  | [ e0; e1 ] ->
    Alcotest.(check bool) "13-field row loads as aarch64" true
      (Scamv_arch.Isa.equal e0.Journal.isa Scamv_arch.Isa.Aarch64);
    Alcotest.(check bool) "14-field row loads as riscv" true
      (Scamv_arch.Isa.equal e1.Journal.isa Scamv_arch.Isa.Riscv)
  | _ -> Alcotest.fail "expected two experiment entries");
  match Journal.events loaded with
  | [ _; _; Journal.Diverged { program_index; pair; aarch64; riscv; _ } ] ->
    Alcotest.(check Alcotest.int) "diverged index" 2 program_index;
    Alcotest.(check bool) "diverged pair" true (pair = (0, 1));
    Alcotest.(check bool) "diverged verdicts" true
      (aarch64 = Executor.Distinguishable && riscv = Executor.Indistinguishable)
  | _ -> Alcotest.fail "Diverged event lost"

(* ---- retry policy ---- *)

let scripted verdicts =
  let calls = ref 0 in
  let run ~attempt =
    incr calls;
    (List.nth verdicts (min attempt (List.length verdicts - 1)), 0)
  in
  (run, calls)

let test_retry_first_conclusive_wins () =
  let run, calls = scripted [ Executor.Indistinguishable ] in
  let o = Retry.execute (Retry.make ~max_attempts:5 ()) run in
  Alcotest.(check bool) "verdict" true (o.Retry.verdict = Executor.Indistinguishable);
  Alcotest.(check Alcotest.int) "one attempt" 1 !calls;
  Alcotest.(check Alcotest.int) "no retries" 0 o.Retry.retries

let test_retry_on_inconclusive () =
  let run, calls =
    scripted [ Executor.Inconclusive; Executor.Inconclusive; Executor.Distinguishable ]
  in
  let o = Retry.execute (Retry.make ~max_attempts:5 ()) run in
  Alcotest.(check bool) "recovered" true (o.Retry.verdict = Executor.Distinguishable);
  Alcotest.(check Alcotest.int) "three attempts" 3 !calls;
  Alcotest.(check Alcotest.int) "two retries" 2 o.Retry.retries

let test_retry_persistent_noise_downgrades () =
  let run, calls = scripted [ Executor.Inconclusive ] in
  let o = Retry.execute (Retry.make ~max_attempts:4 ()) run in
  Alcotest.(check bool) "inconclusive" true (o.Retry.verdict = Executor.Inconclusive);
  Alcotest.(check Alcotest.int) "all attempts used" 4 !calls

let test_retry_majority_vote_disagreement () =
  (* D, I, I with confirm=2: indistinguishable wins the vote. *)
  let run, _ =
    scripted [ Executor.Distinguishable; Executor.Indistinguishable; Executor.Indistinguishable ]
  in
  let o = Retry.execute (Retry.make ~max_attempts:3 ~confirm:2 ()) run in
  Alcotest.(check bool) "majority" true (o.Retry.verdict = Executor.Indistinguishable);
  (* D, I with confirm=2 and only two attempts: a tie stays Inconclusive. *)
  let run, _ = scripted [ Executor.Distinguishable; Executor.Indistinguishable ] in
  let o = Retry.execute (Retry.make ~max_attempts:2 ~confirm:2 ()) run in
  Alcotest.(check bool) "tie downgrades" true (o.Retry.verdict = Executor.Inconclusive)

let test_retry_exponential_budget () =
  (* Attempts cost 1, 2, 4, ...: a budget of 3 admits exactly 2 attempts
     however large max_attempts is. *)
  let run, calls = scripted [ Executor.Inconclusive ] in
  let o = Retry.execute (Retry.make ~max_attempts:100 ~attempt_budget:3 ()) run in
  Alcotest.(check Alcotest.int) "budget admits two attempts" 2 !calls;
  Alcotest.(check bool) "still inconclusive" true (o.Retry.verdict = Executor.Inconclusive)

let test_retry_rejects_bad_policy () =
  Alcotest.(check bool) "max_attempts >= 1" true
    (try
       ignore (Retry.make ~max_attempts:0 ());
       false
     with Invalid_argument _ -> true)

(* ---- escalating backoff ---- *)

let test_backoff_escalates_and_caps () =
  (* Without jitter the schedule is exactly geometric up to the cap. *)
  let b = Retry.backoff ~base_delay:0.1 ~multiplier:2.0 ~max_delay:0.5 ~jitter:0.0 () in
  let sched = Retry.backoff_schedule b ~seed:1L ~attempts:5 in
  List.iter2
    (fun expected got -> Alcotest.(check (Alcotest.float 1e-9)) "delay" expected got)
    [ 0.1; 0.2; 0.4; 0.5; 0.5 ] sched

let test_backoff_execute_spaces_retries () =
  (* execute sleeps exactly the scheduled delays before each retry, and
     reports their sum. *)
  let slept = ref [] in
  let b = Retry.backoff ~base_delay:0.01 ~jitter:0.25 () in
  let policy = Retry.make ~max_attempts:4 ~backoff:b () in
  let run ~attempt:_ = (Executor.Inconclusive, 0) in
  let o = Retry.execute ~seed:5L ~sleep:(fun d -> slept := d :: !slept) policy run in
  Alcotest.(check Alcotest.int) "three retries slept" 3 (List.length !slept);
  Alcotest.(check bool) "slept the scheduled delays" true
    (List.rev !slept = Retry.backoff_schedule b ~seed:5L ~attempts:3);
  Alcotest.(check (Alcotest.float 1e-9))
    "sum reported" (List.fold_left ( +. ) 0.0 !slept)
    o.Retry.backoff_seconds;
  (* No backoff configured: never sleeps (the historical behaviour). *)
  let slept = ref 0 in
  let o =
    Retry.execute ~sleep:(fun _ -> incr slept) (Retry.make ~max_attempts:4 ()) run
  in
  Alcotest.(check Alcotest.int) "no backoff, no sleep" 0 !slept;
  Alcotest.(check (Alcotest.float 1e-9)) "zero seconds" 0.0 o.Retry.backoff_seconds

let test_backoff_rejects_bad_fields () =
  List.iter
    (fun mk ->
      Alcotest.(check bool) "rejected" true
        (try
           ignore (mk ());
           false
         with Invalid_argument _ -> true))
    [
      (fun () -> Retry.backoff ~base_delay:(-0.1) ());
      (fun () -> Retry.backoff ~multiplier:0.5 ());
      (fun () -> Retry.backoff ~jitter:1.5 ());
      (fun () -> Retry.backoff ~max_delay:(-1.0) ());
    ]

let prop_backoff_reproducible =
  (* The satellite's pinned property: the jittered schedule is a pure
     function of (backoff, seed, attempt) — same seed, same schedule —
     and every delay stays within (0, max_delay]. *)
  QCheck.Test.make ~name:"backoff schedule reproducible and bounded" ~count:200
    QCheck.(pair int64 (int_range 1 20))
    (fun (seed, attempts) ->
      let b = Retry.backoff ~base_delay:0.05 ~max_delay:2.0 ~jitter:0.25 () in
      let s1 = Retry.backoff_schedule b ~seed ~attempts in
      let s2 = Retry.backoff_schedule b ~seed ~attempts in
      s1 = s2
      && List.length s1 = attempts
      && List.for_all (fun d -> d > 0.0 && d <= 2.0) s1)

let prop_backoff_seed_sensitivity =
  QCheck.Test.make ~name:"backoff jitter varies with seed" ~count:50
    QCheck.(pair int64 int64)
    (fun (s1, s2) ->
      QCheck.assume (s1 <> s2);
      let b = Retry.backoff ~jitter:0.25 () in
      (* Some delay in a longish schedule differs (jitter draws are keyed
         on the seed); identical schedules for different seeds would mean
         the seed is ignored. *)
      Retry.backoff_schedule b ~seed:s1 ~attempts:16
      <> Retry.backoff_schedule b ~seed:s2 ~attempts:16)

(* ---- fault injection ---- *)

let sample_view = [ (0, [ 1L; 2L ]); (1, [ 3L ]); (2, []) ]

let test_faults_rate_zero_is_identity () =
  let f = Faults.start (Faults.config ~rate:0.0 ()) ~run_seed:42L in
  for _ = 1 to 100 do
    match Faults.apply f sample_view with
    | Some v when v = sample_view -> ()
    | _ -> Alcotest.fail "rate 0.0 must never inject"
  done;
  Alcotest.(check Alcotest.int) "no faults" 0 (Faults.injected f)

let test_faults_rate_one_always_injects () =
  let f = Faults.start (Faults.config ~rate:1.0 ~seed:9L ()) ~run_seed:1L in
  for _ = 1 to 50 do
    match Faults.apply f sample_view with
    | None -> () (* dropped *)
    | Some v ->
      Alcotest.(check bool) "perturbed or polluted" false (v = sample_view)
  done;
  Alcotest.(check Alcotest.int) "every measurement faulted" 50 (Faults.injected f)

let test_faults_deterministic () =
  let stream seed =
    let f = Faults.start (Faults.config ~rate:0.5 ~seed:11L ()) ~run_seed:seed in
    List.init 64 (fun _ -> Faults.apply f sample_view)
  in
  Alcotest.(check bool) "same seed, same faults" true (stream 5L = stream 5L);
  Alcotest.(check bool) "different seed, different faults" false (stream 5L = stream 6L)

let test_faults_config_validation () =
  Alcotest.(check bool) "rate out of range rejected" true
    (try
       ignore (Faults.config ~rate:1.5 ());
       false
     with Invalid_argument _ -> true)

(* ---- campaign robustness (the PR's acceptance criteria) ---- *)

let noisy_cfg ?sat_budget ~programs ~tests () =
  Campaign.make ~name:"noisy"
    ~template:(Templates.by_name "A")
    ~setup:(Refinement.mct_vs_mspec ())
    ~programs ~tests_per_program:tests ~seed:2021L ?sat_budget
    ~retry:(Retry.make ~max_attempts:3 ())
    ~faults:(Faults.config ~rate:0.1 ~seed:7L ())
    ()

let counts (s : Stats.t) =
  ( s.Stats.programs,
    s.Stats.programs_with_counterexample,
    s.Stats.experiments,
    s.Stats.counterexamples,
    s.Stats.inconclusive,
    s.Stats.skipped_programs,
    s.Stats.budget_exceeded,
    s.Stats.retries,
    s.Stats.faults_observed )

(* Events minus their timing fields, which legitimately differ between an
   original and a resumed run. *)
let event_key = function
  | Journal.Experiment e ->
    `Experiment
      ( e.Journal.program_index,
        e.Journal.test_index,
        e.Journal.path_pair,
        e.Journal.verdict,
        e.Journal.retries,
        e.Journal.faults )
  | Journal.Quarantined { program_index; pair; _ } -> `Quarantined (program_index, pair)
  | Journal.Program_failed { program_index; reason; _ } -> `Failed (program_index, reason)
  | Journal.Crashed { program_index; reason; _ } -> `Crashed (program_index, reason)
  | Journal.Diverged { program_index; pair; aarch64; riscv; _ } ->
    `Diverged (program_index, pair, aarch64, riscv)

let test_campaign_noisy_budgeted_completes () =
  (* A seeded campaign with 10% fault injection and a tight SAT budget must
     complete without raising, retry noisy experiments, and quarantine
     budget-blown path pairs. *)
  let cfg =
    noisy_cfg ~sat_budget:(Sat.budget ~conflicts:100 ()) ~programs:6 ~tests:4 ()
  in
  let outcome = Campaign.run cfg in
  let s = outcome.Campaign.stats in
  Alcotest.(check Alcotest.int) "all programs accounted for" 6 s.Stats.programs;
  Alcotest.(check bool) "experiments ran" true (s.Stats.experiments > 0);
  Alcotest.(check bool) "nonzero retries" true (s.Stats.retries > 0);
  Alcotest.(check bool) "nonzero budget_exceeded" true (s.Stats.budget_exceeded > 0);
  Alcotest.(check bool) "faults observed" true (s.Stats.faults_observed > 0)

let test_campaign_resume_matches_uninterrupted () =
  let cfg =
    noisy_cfg ~sat_budget:(Sat.budget ~conflicts:100 ()) ~programs:5 ~tests:3 ()
  in
  let full_journal = Journal.create () in
  let full = Campaign.run ~journal:full_journal cfg in
  let events = Journal.events full_journal in
  (* Simulate a kill partway through program 2: the checkpoint holds all
     events of programs 0-1 plus the first event of program 2. *)
  let seen_two = ref false in
  let partial =
    List.filter
      (fun ev ->
        let i = Journal.event_program_index ev in
        if i < 2 then true
        else if i = 2 && not !seen_two then begin
          seen_two := true;
          true
        end
        else false)
      events
  in
  Alcotest.(check bool) "kill point is mid-campaign" true !seen_two;
  let ckpt = Journal.create () in
  List.iter (Journal.record_event ckpt) partial;
  let path = temp_path ".ckpt.csv" in
  Journal.write_csv ckpt ~path;
  let resumed_journal = Journal.create () in
  let resumed = Campaign.run ~journal:resumed_journal ~resume:path cfg in
  Alcotest.(check bool) "final stats identical" true
    (counts full.Campaign.stats = counts resumed.Campaign.stats);
  Alcotest.(check bool) "event sequence identical" true
    (List.map event_key (Journal.events full_journal)
    = List.map event_key (Journal.events resumed_journal))

let test_campaign_resume_recovers_damaged_tail () =
  (* --resume pointed at a v2 journal damaged in each of the three ways —
     truncated final record, flipped checksum byte, zero-length file —
     must recover the clean prefix, re-run what was dropped, and land on
     final statistics identical to an uninterrupted run. *)
  let cfg =
    noisy_cfg ~sat_budget:(Sat.budget ~conflicts:100 ()) ~programs:4 ~tests:3 ()
  in
  let full = Campaign.run cfg in
  let persisted () =
    let path = temp_path ".v2" in
    let j = Journal.create ~path () in
    let (_ : Campaign.outcome) = Campaign.run ~journal:j cfg in
    Journal.close j;
    path
  in
  let damage_and_resume ~what damage =
    let path = persisted () in
    damage path;
    let resumed = Campaign.run ~resume:path cfg in
    Alcotest.(check bool)
      (what ^ ": stats match uninterrupted") true
      (counts full.Campaign.stats = counts resumed.Campaign.stats)
  in
  damage_and_resume ~what:"truncated final record" (fun path ->
      let whole = read_file path in
      write_file path (String.sub whole 0 (String.length whole - 7)));
  damage_and_resume ~what:"flipped checksum byte" (fun path ->
      let b = Bytes.of_string (read_file path) in
      let pos = Bytes.length b - 3 in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x01));
      write_file path (Bytes.to_string b));
  damage_and_resume ~what:"zero-length file" (fun path -> write_file path "")

let test_campaign_resume_from_missing_file_is_fresh_run () =
  let cfg = noisy_cfg ~programs:2 ~tests:2 () in
  let fresh = Campaign.run cfg in
  let resumed = Campaign.run ~resume:"/nonexistent/journal.csv" cfg in
  Alcotest.(check bool) "identical stats" true
    (counts fresh.Campaign.stats = counts resumed.Campaign.stats)

let () =
  Alcotest.run "scamv_journal"
    [
      ( "csv",
        [
          Alcotest.test_case "round-trip plain" `Quick test_roundtrip_plain;
          Alcotest.test_case "round-trip quoting" `Quick test_roundtrip_quoting;
          Alcotest.test_case "round-trip fault events" `Quick test_roundtrip_fault_events;
          Alcotest.test_case "rejects garbage" `Quick test_of_csv_rejects_garbage;
          Alcotest.test_case "incremental persistence" `Quick test_incremental_persistence;
        ] );
      ( "journal-v2",
        [
          Alcotest.test_case "round-trip with Crashed event" `Quick test_v2_roundtrip;
          Alcotest.test_case "truncated final record recovers" `Quick
            test_v2_truncated_final_record_recovers;
          Alcotest.test_case "flipped checksum byte recovers" `Quick
            test_v2_flipped_checksum_byte_recovers;
          Alcotest.test_case "zero-length file recovers" `Quick
            test_v2_zero_length_file_recovers;
          Alcotest.test_case "isa column is a compatible tail" `Quick
            test_isa_tail_compat;
        ] );
      ( "retry",
        [
          Alcotest.test_case "first conclusive wins" `Quick test_retry_first_conclusive_wins;
          Alcotest.test_case "retries on inconclusive" `Quick test_retry_on_inconclusive;
          Alcotest.test_case "persistent noise downgrades" `Quick
            test_retry_persistent_noise_downgrades;
          Alcotest.test_case "majority vote" `Quick test_retry_majority_vote_disagreement;
          Alcotest.test_case "exponential budget" `Quick test_retry_exponential_budget;
          Alcotest.test_case "rejects bad policy" `Quick test_retry_rejects_bad_policy;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "escalates and caps" `Quick test_backoff_escalates_and_caps;
          Alcotest.test_case "execute spaces retries" `Quick
            test_backoff_execute_spaces_retries;
          Alcotest.test_case "rejects bad fields" `Quick test_backoff_rejects_bad_fields;
          QCheck_alcotest.to_alcotest prop_backoff_reproducible;
          QCheck_alcotest.to_alcotest prop_backoff_seed_sensitivity;
        ] );
      ( "faults",
        [
          Alcotest.test_case "rate 0 identity" `Quick test_faults_rate_zero_is_identity;
          Alcotest.test_case "rate 1 injects" `Quick test_faults_rate_one_always_injects;
          Alcotest.test_case "deterministic" `Quick test_faults_deterministic;
          Alcotest.test_case "config validation" `Quick test_faults_config_validation;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "noisy+budgeted completes" `Quick
            test_campaign_noisy_budgeted_completes;
          Alcotest.test_case "resume matches uninterrupted" `Quick
            test_campaign_resume_matches_uninterrupted;
          Alcotest.test_case "resume recovers damaged tails" `Quick
            test_campaign_resume_recovers_damaged_tail;
          Alcotest.test_case "resume from missing file" `Quick
            test_campaign_resume_from_missing_file_is_fresh_run;
        ] );
    ]
