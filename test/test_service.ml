(* Validation service: HTTP request parsing and keep-alive semantics,
   routing, tenant quotas / seed and slot namespaces, session streaming
   semantics, scheduler admission control / backpressure / cancellation,
   over-the-wire connection management (persistent connections, idle
   timeout, request cap, 503 load shedding), and the acceptance tests
   that a served campaign's streamed record sequence and journal are
   byte-identical to a batch Campaign.run of the same parameters — at
   concurrency 1 and with two campaigns in flight at once. *)

module Json = Scamv_util.Json
module Stopwatch = Scamv_util.Stopwatch
module Campaign = Scamv.Campaign
module Journal = Scamv.Journal
module Http = Scamv_service.Http
module Router = Scamv_service.Router
module Tenant = Scamv_service.Tenant
module Session = Scamv_service.Session
module Scheduler = Scamv_service.Scheduler
module Server = Scamv_service.Server
module Workload = Scamv_service.Workload

let temp_path name =
  let path = Filename.temp_file "scamv_service" name in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  path

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* Parse raw request bytes through the real reader. *)
let parse_request bytes = Http.read_request (Http.reader_of_string bytes)

(* ---- http ---- *)

let test_http_parse_get () =
  match parse_request "GET /campaigns/a%2Db/stream?from=3&x=a+b HTTP/1.1\r\nHost: h\r\nX-Thing:  v  \r\n\r\n" with
  | None -> Alcotest.fail "no request parsed"
  | Some req ->
    Alcotest.(check string) "method" "GET" req.Http.meth;
    Alcotest.(check string) "path" "/campaigns/a-b/stream" req.Http.path;
    Alcotest.(check string) "version" "HTTP/1.1" req.Http.version;
    Alcotest.(check (option string)) "query from" (Some "3") (Http.query req "from");
    Alcotest.(check (option string)) "query plus" (Some "a b") (Http.query req "x");
    Alcotest.(check (option string)) "header trim" (Some "v") (Http.header req "x-thing");
    Alcotest.(check (option string)) "header case" (Some "h") (Http.header req "HOST");
    Alcotest.(check string) "no body" "" req.Http.body

let test_http_parse_post_body () =
  match parse_request "POST /campaigns HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world" with
  | None -> Alcotest.fail "no request parsed"
  | Some req ->
    Alcotest.(check string) "body" "hello world" req.Http.body

let test_http_rejects_malformed () =
  let bad bytes =
    match parse_request bytes with
    | exception Http.Bad_request _ -> ()
    | _ -> Alcotest.fail (Printf.sprintf "accepted malformed request %S" bytes)
  in
  bad "GET /\r\n\r\n";  (* missing version *)
  bad "GET / SMTP/1.0\r\n\r\n";  (* wrong protocol *)
  bad "GET / HTTP/1.1\r\nno-colon-here\r\n\r\n";
  bad "POST / HTTP/1.1\r\nContent-Length: trouble\r\n\r\n";
  bad "POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort";
  Alcotest.(check bool) "EOF before any byte is a clean close" true
    (parse_request "" = None)

let test_http_pipelined_requests_share_reader () =
  (* The reader's buffer persists across read_request calls, so bytes of
     a second request already buffered are not lost. *)
  let r =
    Http.reader_of_string
      "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n"
  in
  (match Http.read_request r with
  | Some req -> Alcotest.(check string) "first path" "/a" req.Http.path
  | None -> Alcotest.fail "first request missing");
  (match Http.read_request r with
  | Some req ->
    Alcotest.(check string) "second path" "/b" req.Http.path;
    Alcotest.(check bool) "second opts out" false (Http.wants_keep_alive req)
  | None -> Alcotest.fail "second request missing");
  Alcotest.(check bool) "then EOF" true (Http.read_request r = None)

let test_http_keep_alive_intent () =
  let intent bytes =
    match parse_request bytes with
    | Some req -> Http.wants_keep_alive req
    | None -> Alcotest.fail "no request parsed"
  in
  Alcotest.(check bool) "1.1 default persistent" true
    (intent "GET / HTTP/1.1\r\n\r\n");
  Alcotest.(check bool) "1.1 close" false
    (intent "GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
  Alcotest.(check bool) "case and token list" false
    (intent "GET / HTTP/1.1\r\nConnection: Keep-Alive, Close\r\n\r\n");
  Alcotest.(check bool) "1.0 default close" false
    (intent "GET / HTTP/1.0\r\n\r\n");
  Alcotest.(check bool) "1.0 keep-alive opt-in" true
    (intent "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")

(* ---- router ---- *)

let test_router_dispatch () =
  let routes =
    Router.create
      [
        Router.route "GET" "/campaigns" (fun _ -> "list");
        Router.route "POST" "/campaigns" (fun _ -> "submit");
        Router.route "GET" "/campaigns/:id/stream" (fun p -> "stream " ^ List.assoc "id" p);
        Router.route "DELETE" "/campaigns/:id" (fun p -> "cancel " ^ List.assoc "id" p);
      ]
  in
  let matched meth path =
    match Router.dispatch routes ~meth ~path with
    | Router.Matched v -> v
    | _ -> Alcotest.fail (Printf.sprintf "no match for %s %s" meth path)
  in
  Alcotest.(check string) "fixed" "list" (matched "GET" "/campaigns");
  Alcotest.(check string) "trailing slash" "list" (matched "get" "/campaigns/");
  Alcotest.(check string) "binder" "stream abc-1" (matched "GET" "/campaigns/abc-1/stream");
  Alcotest.(check string) "delete binder" "cancel x-2" (matched "DELETE" "/campaigns/x-2");
  (match Router.dispatch routes ~meth:"PUT" ~path:"/campaigns" with
  | Router.Method_not_allowed allowed ->
    Alcotest.(check (list string)) "allow header" [ "GET"; "POST" ] allowed
  | _ -> Alcotest.fail "expected 405");
  (match Router.dispatch routes ~meth:"GET" ~path:"/nope" with
  | Router.Not_found -> ()
  | _ -> Alcotest.fail "expected 404")

(* ---- tenant ---- *)

let test_tenant_names_and_seeds () =
  Alcotest.(check bool) "valid" true (Tenant.validate_name "alice.dev-1" = Ok "alice.dev-1");
  Alcotest.(check bool) "empty" true (Result.is_error (Tenant.validate_name ""));
  Alcotest.(check bool) "slash" true (Result.is_error (Tenant.validate_name "a/b"));
  Alcotest.(check bool) "too long" true
    (Result.is_error (Tenant.validate_name (String.make 65 'a')));
  let s1 = Tenant.derive_seed ~tenant:"alice" ~sequence:0 in
  Alcotest.(check bool) "stable" true (s1 = Tenant.derive_seed ~tenant:"alice" ~sequence:0);
  Alcotest.(check bool) "per-sequence" true
    (s1 <> Tenant.derive_seed ~tenant:"alice" ~sequence:1);
  Alcotest.(check bool) "per-tenant" true
    (s1 <> Tenant.derive_seed ~tenant:"bob" ~sequence:0)

let test_tenant_slot_namespace () =
  (* A pure function of (tenant, sequence, slots): stable across calls,
     always in range, degenerate at slots <= 1. *)
  Alcotest.(check int) "one slot" 0
    (Tenant.derive_slot ~tenant:"a" ~sequence:3 ~slots:1);
  for slots = 2 to 5 do
    for seq = 0 to 19 do
      let slot = Tenant.derive_slot ~tenant:"t" ~sequence:seq ~slots in
      Alcotest.(check bool) "in range" true (slot >= 0 && slot < slots);
      Alcotest.(check int) "stable" slot
        (Tenant.derive_slot ~tenant:"t" ~sequence:seq ~slots)
    done
  done;
  (* the namespace actually spreads: 20 sequences over 2 slots must use
     both (the draw is a fixed splitmix stream, so this cannot flake) *)
  let slots_used =
    List.sort_uniq compare
      (List.init 20 (fun seq -> Tenant.derive_slot ~tenant:"t" ~sequence:seq ~slots:2))
  in
  Alcotest.(check (list int)) "both slots used" [ 0; 1 ] slots_used;
  (* independent of the seed draw: slot and seed come from different
     splitmix positions of the same generator *)
  Alcotest.(check bool) "seed unchanged by slot draw" true
    (Tenant.derive_seed ~tenant:"t" ~sequence:4
    = Tenant.derive_seed ~tenant:"t" ~sequence:4)

let test_tenant_quota () =
  let ten = Tenant.create ~name:"t" ~quota:{ Tenant.max_backlog = 2; max_active = 3 } in
  let admit () = Tenant.admit ten in
  let ok = function Ok (_ : int) -> () | Error _ -> Alcotest.fail "unexpected rejection" in
  ok (admit ());
  Queue.push "t-0" ten.Tenant.pending;
  ok (admit ());
  Queue.push "t-1" ten.Tenant.pending;
  (* backlog full (2 queued) even though active quota has room *)
  Alcotest.(check bool) "backlog full" true (admit () = Error Tenant.Backlog_full);
  (* runner takes one off the queue: backlog has room, but active hits 3 *)
  ignore (Queue.pop ten.Tenant.pending);
  ok (admit ());
  Queue.push "t-2" ten.Tenant.pending;
  ignore (Queue.pop ten.Tenant.pending);
  Alcotest.(check bool) "active quota" true (admit () = Error Tenant.Quota_exceeded);
  (* a finished session frees an active slot *)
  Tenant.finish ten;
  ok (admit ())

(* ---- session ---- *)

let test_session_params_json () =
  let p =
    match
      Session.params_of_json
        (Json.of_string
           {|{"template":"C","programs":4,"seed":"-3","tenant":"ignored"}|})
    with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check string) "template" "C" p.Session.template;
  Alcotest.(check int) "programs" 4 p.Session.programs;
  Alcotest.(check string) "defaulted setup" "mct-vs-mspec" p.Session.setup;
  Alcotest.(check bool) "seed" true (p.Session.seed = Some (-3L));
  Alcotest.(check bool) "unknown field rejected" true
    (Result.is_error (Session.params_of_json (Json.of_string {|{"porgrams":4}|})));
  Alcotest.(check bool) "non-object rejected" true
    (Result.is_error (Session.params_of_json (Json.Arr [])));
  (* round-trip through the meta rendering *)
  match Session.params_of_json (Session.params_to_json p) with
  | Ok p' -> Alcotest.(check bool) "params round-trip" true (p = p')
  | Error e -> Alcotest.fail e

let make_session ?(id = "t-0") () =
  Session.create ~id ~tenant:"t" ~params:Session.default_params ~seed:1L
    ~campaign_name:"c" ~submitted:0 ()

let test_session_stream_semantics () =
  let s = make_session () in
  Session.push_line s "one";
  Session.push_line s "two";
  let lines, next, terminal = Session.lines_from s ~from:0 in
  Alcotest.(check (list string)) "lines" [ "one"; "two" ] lines;
  Alcotest.(check int) "next" 2 next;
  Alcotest.(check bool) "not terminal" false terminal;
  (* a waiter blocked past the end is released by conclude, and the done
     line is already visible when it wakes *)
  let woke = ref [] in
  let waiter =
    Thread.create (fun () -> woke := (fun (l, _, t) -> assert t; l) (Session.wait_lines s ~from:2)) ()
  in
  Thread.yield ();
  Session.conclude s Session.Completed ();
  Thread.join waiter;
  (match !woke with
  | [ done_line ] ->
    Alcotest.(check bool) "done line terminal" true
      (String.length done_line >= 8 && String.sub done_line 0 8 = "{\"done\":")
  | other -> Alcotest.fail (Printf.sprintf "waiter saw %d lines" (List.length other)));
  let all, _, terminal = Session.lines_from s ~from:0 in
  Alcotest.(check int) "terminal stream length" 3 (List.length all);
  Alcotest.(check bool) "terminal" true terminal

(* ---- scheduler: admission control (no runner thread) ---- *)

let sched_config ?state_dir ?(jobs = 1) ?(concurrency = 1)
    ?(quota = Tenant.default_quota) () =
  { Scheduler.jobs; concurrency; state_dir; quota; clock = Stopwatch.frozen }

let small_params = { Session.default_params with Session.programs = 2; tests_per_program = 2 }

let test_scheduler_admission () =
  let quota = { Tenant.max_backlog = 2; max_active = 8 } in
  let t = Scheduler.create ~config:(sched_config ~quota ()) ~start:false () in
  let ok tenant =
    match Scheduler.submit t ~tenant small_params with
    | Ok s -> s
    | Error _ -> Alcotest.fail "unexpected rejection"
  in
  (* invalid input is rejected up front *)
  (match Scheduler.submit t ~tenant:"bad/name" small_params with
  | Error (Scheduler.Invalid _) -> ()
  | _ -> Alcotest.fail "bad tenant accepted");
  (match
     Scheduler.submit t ~tenant:"a"
       { small_params with Session.template = "Z9" }
   with
  | Error (Scheduler.Invalid _) -> ()
  | _ -> Alcotest.fail "bad template accepted");
  (match
     Scheduler.submit t ~tenant:"a" { small_params with Session.setup = "nope" }
   with
  | Error (Scheduler.Invalid _) -> ()
  | _ -> Alcotest.fail "bad setup accepted");
  (* per-tenant backlog: two queued fill tenant a; b is unaffected *)
  let a0 = ok "a" in
  let _a1 = ok "a" in
  (match Scheduler.submit t ~tenant:"a" small_params with
  | Error (Scheduler.Busy Tenant.Backlog_full) -> ()
  | _ -> Alcotest.fail "expected backlog rejection");
  let _b0 = ok "b" in
  (* ids are per-tenant sequences; seeds come from the tenant namespace *)
  Alcotest.(check string) "id" "a-0" a0.Session.id;
  Alcotest.(check bool) "namespace seed" true
    (a0.Session.seed = Tenant.derive_seed ~tenant:"a" ~sequence:0);
  Alcotest.(check int) "concurrency-1 slot" 0 a0.Session.slot;
  (* cancelling a queued session frees its backlog slot immediately *)
  Alcotest.(check bool) "cancel" true (Scheduler.cancel t a0);
  Alcotest.(check bool) "cancel idempotent" false (Scheduler.cancel t a0);
  Alcotest.(check bool) "terminal" true (Session.state a0 = Session.Cancelled);
  (match Scheduler.submit t ~tenant:"a" small_params with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "slot not freed by cancel");
  (* the cancelled session's stream is exactly one done line *)
  (match Session.lines_from a0 ~from:0 with
  | [ line ], _, true ->
    Alcotest.(check bool) "cancelled done line" true
      (String.length line >= 20 && String.sub line 0 20 = "{\"done\":\"cancelled\"}")
  | lines, _, _ -> Alcotest.fail (Printf.sprintf "stream of %d lines" (List.length lines)));
  Scheduler.shutdown t;
  (* after shutdown: reject new work *)
  match Scheduler.submit t ~tenant:"a" small_params with
  | Error Scheduler.Stopped -> ()
  | _ -> Alcotest.fail "submit after shutdown accepted"

(* ---- scheduler: execution, cancellation, acceptance ---- *)

let wait_terminal s =
  let rec go from =
    let _, next, terminal = Session.wait_lines s ~from in
    if not terminal then go next
  in
  go 0

let test_scheduler_cancel_running () =
  let t = Scheduler.create ~config:(sched_config ()) () in
  let s =
    match
      Scheduler.submit t ~tenant:"c"
        { Session.default_params with Session.programs = 200; tests_per_program = 4 }
    with
    | Ok s -> s
    | Error _ -> Alcotest.fail "submit failed"
  in
  (* wait for the first record, then cancel mid-campaign *)
  let (_ : string list * int * bool) = Session.wait_lines s ~from:0 in
  Alcotest.(check bool) "cancel running" true (Scheduler.cancel t s);
  wait_terminal s;
  Alcotest.(check bool) "cancelled" true (Session.state s = Session.Cancelled);
  (* the drained campaign journals every unfinished program as crashed
     with the normalized cancel reason *)
  let lines, _, _ = Session.lines_from s ~from:0 in
  Alcotest.(check bool) "cancel reason recorded" true
    (List.exists
       (fun l ->
         let n = String.length l and needle = "campaign cancelled" in
         let nn = String.length needle in
         let rec has i = i + nn <= n && (String.sub l i nn = needle || has (i + 1)) in
         has 0)
       lines);
  Scheduler.shutdown t

(* Batch reference for the acceptance checks: the CLI path — same
   workload resolution, own journal file. *)
let batch_reference ~programs ~tests_per_program ~seed =
  let template = Result.get_ok (Workload.lookup_template "A") in
  let setup = Result.get_ok (Workload.lookup_setup "mct-vs-mspec") in
  let cfg =
    Campaign.make
      ~name:(Workload.campaign_name ~setup:"mct-vs-mspec" ~template:"A")
      ~template ~setup ~view:(Workload.view_for "mct-vs-mspec") ~programs
      ~tests_per_program ~seed ~clock:Stopwatch.frozen ()
  in
  let ref_path = temp_path ".journal" in
  Sys.remove ref_path;
  let journal = Journal.create ~path:ref_path () in
  let (_ : Campaign.outcome) = Campaign.run ~journal cfg in
  Journal.close journal;
  (List.map Session.record_line (Journal.events journal), ref_path)

let record_lines_of s =
  let lines, _, _ = Session.lines_from s ~from:0 in
  List.filter
    (fun l -> String.length l >= 10 && String.sub l 0 10 = "{\"record\":")
    lines

(* The acceptance check: a served campaign's record stream and journal
   file are byte-identical to a batch Campaign.run of the same
   (template, setup, seed, sizes) under the same frozen clock. *)
let test_scheduler_stream_matches_batch () =
  let dir = Filename.temp_file "scamv_service_state" "" in
  Sys.remove dir;
  let params =
    { Session.default_params with Session.programs = 4; tests_per_program = 3;
      seed = Some 2021L }
  in
  let t = Scheduler.create ~config:(sched_config ~state_dir:dir ~jobs:2 ()) () in
  let s =
    match Scheduler.submit t ~tenant:"acc" params with
    | Ok s -> s
    | Error _ -> Alcotest.fail "submit failed"
  in
  wait_terminal s;
  Alcotest.(check bool) "completed" true (Session.state s = Session.Completed);
  Scheduler.shutdown t;
  let expected, ref_path =
    batch_reference ~programs:4 ~tests_per_program:3 ~seed:2021L
  in
  let records = record_lines_of s in
  Alcotest.(check bool) "some records" true (expected <> []);
  Alcotest.(check (list string)) "stream matches batch" expected records;
  let served_journal = Filename.concat dir (s.Session.id ^ ".journal") in
  Alcotest.(check string) "journal bytes match batch" (read_file ref_path)
    (read_file served_journal)

(* Concurrency acceptance: two campaigns in flight at once, each on its
   own pool slice, still produce streams byte-identical to batch runs. *)
let test_scheduler_concurrent_matches_batch () =
  let t =
    Scheduler.create ~config:(sched_config ~jobs:2 ~concurrency:2 ()) ()
  in
  Alcotest.(check int) "slots" 2 (Scheduler.concurrency t);
  let submit tenant seed =
    match
      Scheduler.submit t ~tenant
        { Session.default_params with Session.programs = 3;
          tests_per_program = 2; seed = Some seed }
    with
    | Ok s -> s
    | Error _ -> Alcotest.fail "submit failed"
  in
  (* Submissions from distinct tenants spread over the slot namespace;
     whatever the assignment, both must match their batch references. *)
  let sessions =
    List.map
      (fun (tenant, seed) -> (submit tenant seed, seed))
      [ ("conc-a", 41L); ("conc-b", 42L) ]
  in
  Scheduler.drain t;
  List.iter
    (fun (s, seed) ->
      Alcotest.(check bool) "completed" true (Session.state s = Session.Completed);
      Alcotest.(check bool) "slot in range" true
        (s.Session.slot >= 0 && s.Session.slot < 2);
      let expected, _ = batch_reference ~programs:3 ~tests_per_program:2 ~seed in
      Alcotest.(check (list string))
        (Printf.sprintf "stream of %s matches batch" s.Session.id)
        expected (record_lines_of s))
    sessions;
  Scheduler.shutdown t

(* ---- server: wire-level connection management ---- *)

let with_server ?(concurrency = 1) ?(jobs = 1) ?max_connections ?idle_timeout
    ?max_requests ?(start_sched = true) f =
  let sched =
    Scheduler.create ~config:(sched_config ~jobs ~concurrency ()) ~start:start_sched ()
  in
  let server =
    Server.create ~port:0 ?max_connections ?idle_timeout ?max_requests sched
  in
  Server.start server;
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Scheduler.shutdown sched)
    (fun () -> f sched (Server.port server))

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let send fd s =
  let n = Unix.write_substring fd s 0 (String.length s) in
  Alcotest.(check int) "request fully written" (String.length s) n

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

(* Read one response off a (possibly persistent) connection: status,
   lowercased headers, and the body (Content-Length or chunked). *)
let read_response ic =
  let status_line = strip_cr (input_line ic) in
  let status = Scanf.sscanf status_line "HTTP/1.1 %d" (fun c -> c) in
  let rec headers acc =
    match strip_cr (input_line ic) with
    | "" -> List.rev acc
    | line -> (
      match String.index_opt line ':' with
      | Some i ->
        headers
          ((String.lowercase_ascii (String.sub line 0 i),
            String.trim (String.sub line (i + 1) (String.length line - i - 1)))
          :: acc)
      | None -> headers acc)
  in
  let hs = headers [] in
  let body =
    match List.assoc_opt "content-length" hs with
    | Some n -> really_input_string ic (int_of_string n)
    | None ->
      if List.assoc_opt "transfer-encoding" hs = Some "chunked" then begin
        let b = Buffer.create 256 in
        let rec chunks () =
          let size = int_of_string ("0x" ^ strip_cr (input_line ic)) in
          if size = 0 then ignore (input_line ic)
          else begin
            Buffer.add_string b (really_input_string ic size);
            ignore (input_line ic);
            chunks ()
          end
        in
        chunks ();
        Buffer.contents b
      end
      else ""
  in
  (status, hs, body)

let expect_eof ic =
  match input_char ic with
  | exception End_of_file -> ()
  | _ -> Alcotest.fail "expected the server to close the connection"

let metric_value body name =
  String.split_on_char '\n' body
  |> List.find_map (fun line ->
         match String.index_opt line ' ' with
         | Some i when String.sub line 0 i = name ->
           float_of_string_opt
             (String.sub line (i + 1) (String.length line - i - 1))
         | _ -> None)

let test_server_keep_alive_reuse () =
  with_server (fun _sched port ->
      let fd = connect port in
      let ic = Unix.in_channel_of_descr fd in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* three requests down one connection *)
          send fd "GET /healthz HTTP/1.1\r\n\r\n";
          let status, hs, body = read_response ic in
          Alcotest.(check int) "first status" 200 status;
          Alcotest.(check (option string)) "first advertises keep-alive"
            (Some "keep-alive")
            (List.assoc_opt "connection" hs);
          Alcotest.(check string) "healthz body" "{\"ok\":true}\n" body;
          send fd "GET /healthz HTTP/1.1\r\n\r\n";
          let status, _, _ = read_response ic in
          Alcotest.(check int) "second status" 200 status;
          send fd "GET /metrics HTTP/1.1\r\n\r\n";
          let status, _, body = read_response ic in
          Alcotest.(check int) "third status" 200 status;
          (* requests 2 and 3 each count one reuse; the gauge sees this
             very connection as active *)
          Alcotest.(check (option (float 0.0))) "reuse counter" (Some 2.0)
            (metric_value body "scamv_service_connections_reused");
          Alcotest.(check (option (float 0.0))) "active gauge" (Some 1.0)
            (metric_value body "scamv_service_connections_active")))

let test_server_connection_close_honored () =
  with_server (fun _sched port ->
      let fd = connect port in
      let ic = Unix.in_channel_of_descr fd in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          send fd "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
          let status, hs, _ = read_response ic in
          Alcotest.(check int) "status" 200 status;
          Alcotest.(check (option string)) "advertises close" (Some "close")
            (List.assoc_opt "connection" hs);
          expect_eof ic))

let test_server_idle_timeout_closes () =
  with_server ~idle_timeout:0.4 (fun _sched port ->
      let fd = connect port in
      let ic = Unix.in_channel_of_descr fd in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          send fd "GET /healthz HTTP/1.1\r\n\r\n";
          let status, _, _ = read_response ic in
          Alcotest.(check int) "served before idling" 200 status;
          (* send nothing more: the idle deadline closes the connection *)
          expect_eof ic))

let test_server_request_cap_rollover () =
  with_server ~max_requests:2 (fun _sched port ->
      let fd = connect port in
      let ic = Unix.in_channel_of_descr fd in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          send fd "GET /healthz HTTP/1.1\r\n\r\n";
          let _, hs, _ = read_response ic in
          Alcotest.(check (option string)) "first keeps alive" (Some "keep-alive")
            (List.assoc_opt "connection" hs);
          send fd "GET /healthz HTTP/1.1\r\n\r\n";
          let status, hs, _ = read_response ic in
          Alcotest.(check int) "capped request served" 200 status;
          Alcotest.(check (option string)) "cap forces close" (Some "close")
            (List.assoc_opt "connection" hs);
          expect_eof ic);
      (* rollover: a fresh connection is served normally *)
      let fd2 = connect port in
      let ic2 = Unix.in_channel_of_descr fd2 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd2 with Unix.Unix_error _ -> ())
        (fun () ->
          send fd2 "GET /healthz HTTP/1.1\r\n\r\n";
          let status, _, _ = read_response ic2 in
          Alcotest.(check int) "fresh connection after rollover" 200 status))

let test_server_malformed_second_request () =
  with_server (fun _sched port ->
      let fd = connect port in
      let ic = Unix.in_channel_of_descr fd in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          send fd "GET /healthz HTTP/1.1\r\n\r\n";
          let status, _, _ = read_response ic in
          Alcotest.(check int) "first ok" 200 status;
          (* garbage on the reused connection: 400, then close — framing
             is no longer trustworthy *)
          send fd "BOGUS\r\n\r\n";
          let status, hs, _ = read_response ic in
          Alcotest.(check int) "malformed rejected" 400 status;
          Alcotest.(check (option string)) "and closed" (Some "close")
            (List.assoc_opt "connection" hs);
          expect_eof ic);
      (* the worker is not poisoned: it serves the next connection *)
      let fd2 = connect port in
      let ic2 = Unix.in_channel_of_descr fd2 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd2 with Unix.Unix_error _ -> ())
        (fun () ->
          send fd2 "GET /healthz HTTP/1.1\r\n\r\n";
          let status, _, _ = read_response ic2 in
          Alcotest.(check int) "worker survives" 200 status))

let test_server_backpressure_503 () =
  (* One connection worker, no campaign runner: a streaming request for a
     queued session parks the only worker forever, the next connection
     waits in the handoff queue, and the one after that must be shed with
     503 + Retry-After by the acceptor itself. *)
  with_server ~start_sched:false ~max_connections:1 (fun sched port ->
      let s =
        match Scheduler.submit sched ~tenant:"bp" small_params with
        | Ok s -> s
        | Error _ -> Alcotest.fail "submit failed"
      in
      let fd_a = connect port in
      let ic_a = Unix.in_channel_of_descr fd_a in
      let closer fd () = try Unix.close fd with Unix.Unix_error _ -> () in
      Fun.protect ~finally:(closer fd_a) (fun () ->
          send fd_a
            (Printf.sprintf
               "GET /campaigns/%s/stream HTTP/1.1\r\nConnection: close\r\n\r\n"
               s.Session.id);
          (* the stream head arrives immediately; the body then blocks *)
          let line = strip_cr (input_line ic_a) in
          Alcotest.(check string) "stream head" "HTTP/1.1 200 OK" line;
          let fd_b = connect port in
          Fun.protect ~finally:(closer fd_b) (fun () ->
              (* b sits in the handoff queue; give the acceptor a moment *)
              Thread.delay 0.05;
              let fd_c = connect port in
              let ic_c = Unix.in_channel_of_descr fd_c in
              Fun.protect ~finally:(closer fd_c) (fun () ->
                  let status, hs, _ = read_response ic_c in
                  Alcotest.(check int) "shed with 503" 503 status;
                  Alcotest.(check (option string)) "retry-after" (Some "1")
                    (List.assoc_opt "retry-after" hs);
                  Alcotest.(check (option string)) "and closed" (Some "close")
                    (List.assoc_opt "connection" hs);
                  expect_eof ic_c));
          (* unblock the parked worker so stop is prompt *)
          ignore (Scheduler.cancel sched s)))

let () =
  Alcotest.run "scamv_service"
    [
      ( "http",
        [
          Alcotest.test_case "parses GET with query" `Quick test_http_parse_get;
          Alcotest.test_case "parses POST body" `Quick test_http_parse_post_body;
          Alcotest.test_case "rejects malformed requests" `Quick
            test_http_rejects_malformed;
          Alcotest.test_case "pipelined bytes survive between requests" `Quick
            test_http_pipelined_requests_share_reader;
          Alcotest.test_case "keep-alive intent" `Quick test_http_keep_alive_intent;
        ] );
      ( "router",
        [ Alcotest.test_case "dispatch/405/404" `Quick test_router_dispatch ] );
      ( "tenant",
        [
          Alcotest.test_case "names and seed namespace" `Quick
            test_tenant_names_and_seeds;
          Alcotest.test_case "slot namespace" `Quick test_tenant_slot_namespace;
          Alcotest.test_case "quota admission" `Quick test_tenant_quota;
        ] );
      ( "session",
        [
          Alcotest.test_case "params JSON" `Quick test_session_params_json;
          Alcotest.test_case "stream wait/conclude" `Quick
            test_session_stream_semantics;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "admission control and backpressure" `Quick
            test_scheduler_admission;
          Alcotest.test_case "cancel mid-campaign" `Quick
            test_scheduler_cancel_running;
          Alcotest.test_case "stream and journal match batch run" `Quick
            test_scheduler_stream_matches_batch;
          Alcotest.test_case "concurrent campaigns match batch runs" `Quick
            test_scheduler_concurrent_matches_batch;
        ] );
      ( "server",
        [
          Alcotest.test_case "keep-alive reuse and metrics" `Quick
            test_server_keep_alive_reuse;
          Alcotest.test_case "Connection: close honored" `Quick
            test_server_connection_close_honored;
          Alcotest.test_case "idle timeout closes cleanly" `Quick
            test_server_idle_timeout_closes;
          Alcotest.test_case "request cap rolls the connection over" `Quick
            test_server_request_cap_rollover;
          Alcotest.test_case "malformed reused request isolated" `Quick
            test_server_malformed_second_request;
          Alcotest.test_case "accept queue sheds with 503" `Quick
            test_server_backpressure_503;
        ] );
    ]
