(* Validation service: HTTP request parsing, routing, tenant quotas and
   seed namespaces, session streaming semantics, scheduler admission
   control / backpressure / cancellation, and the acceptance test that a
   served campaign's streamed record sequence and journal are
   byte-identical to a batch Campaign.run of the same parameters. *)

module Json = Scamv_util.Json
module Stopwatch = Scamv_util.Stopwatch
module Campaign = Scamv.Campaign
module Journal = Scamv.Journal
module Http = Scamv_service.Http
module Router = Scamv_service.Router
module Tenant = Scamv_service.Tenant
module Session = Scamv_service.Session
module Scheduler = Scamv_service.Scheduler
module Workload = Scamv_service.Workload

let temp_path name =
  let path = Filename.temp_file "scamv_service" name in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  path

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* Parse raw request bytes through the real channel-based reader. *)
let parse_request bytes =
  let path = temp_path ".req" in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc bytes);
  In_channel.with_open_bin path Http.read_request

(* ---- http ---- *)

let test_http_parse_get () =
  match parse_request "GET /campaigns/a%2Db/stream?from=3&x=a+b HTTP/1.1\r\nHost: h\r\nX-Thing:  v  \r\n\r\n" with
  | None -> Alcotest.fail "no request parsed"
  | Some req ->
    Alcotest.(check string) "method" "GET" req.Http.meth;
    Alcotest.(check string) "path" "/campaigns/a-b/stream" req.Http.path;
    Alcotest.(check (option string)) "query from" (Some "3") (Http.query req "from");
    Alcotest.(check (option string)) "query plus" (Some "a b") (Http.query req "x");
    Alcotest.(check (option string)) "header trim" (Some "v") (Http.header req "x-thing");
    Alcotest.(check (option string)) "header case" (Some "h") (Http.header req "HOST");
    Alcotest.(check string) "no body" "" req.Http.body

let test_http_parse_post_body () =
  match parse_request "POST /campaigns HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world" with
  | None -> Alcotest.fail "no request parsed"
  | Some req ->
    Alcotest.(check string) "body" "hello world" req.Http.body

let test_http_rejects_malformed () =
  let bad bytes =
    match parse_request bytes with
    | exception Http.Bad_request _ -> ()
    | _ -> Alcotest.fail (Printf.sprintf "accepted malformed request %S" bytes)
  in
  bad "GET /\r\n\r\n";  (* missing version *)
  bad "GET / SMTP/1.0\r\n\r\n";  (* wrong protocol *)
  bad "GET / HTTP/1.1\r\nno-colon-here\r\n\r\n";
  bad "POST / HTTP/1.1\r\nContent-Length: trouble\r\n\r\n";
  bad "POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort";
  Alcotest.(check bool) "EOF before any byte is a clean close" true
    (parse_request "" = None)

(* ---- router ---- *)

let test_router_dispatch () =
  let routes =
    Router.create
      [
        Router.route "GET" "/campaigns" (fun _ -> "list");
        Router.route "POST" "/campaigns" (fun _ -> "submit");
        Router.route "GET" "/campaigns/:id/stream" (fun p -> "stream " ^ List.assoc "id" p);
        Router.route "DELETE" "/campaigns/:id" (fun p -> "cancel " ^ List.assoc "id" p);
      ]
  in
  let matched meth path =
    match Router.dispatch routes ~meth ~path with
    | Router.Matched v -> v
    | _ -> Alcotest.fail (Printf.sprintf "no match for %s %s" meth path)
  in
  Alcotest.(check string) "fixed" "list" (matched "GET" "/campaigns");
  Alcotest.(check string) "trailing slash" "list" (matched "get" "/campaigns/");
  Alcotest.(check string) "binder" "stream abc-1" (matched "GET" "/campaigns/abc-1/stream");
  Alcotest.(check string) "delete binder" "cancel x-2" (matched "DELETE" "/campaigns/x-2");
  (match Router.dispatch routes ~meth:"PUT" ~path:"/campaigns" with
  | Router.Method_not_allowed allowed ->
    Alcotest.(check (list string)) "allow header" [ "GET"; "POST" ] allowed
  | _ -> Alcotest.fail "expected 405");
  (match Router.dispatch routes ~meth:"GET" ~path:"/nope" with
  | Router.Not_found -> ()
  | _ -> Alcotest.fail "expected 404")

(* ---- tenant ---- *)

let test_tenant_names_and_seeds () =
  Alcotest.(check bool) "valid" true (Tenant.validate_name "alice.dev-1" = Ok "alice.dev-1");
  Alcotest.(check bool) "empty" true (Result.is_error (Tenant.validate_name ""));
  Alcotest.(check bool) "slash" true (Result.is_error (Tenant.validate_name "a/b"));
  Alcotest.(check bool) "too long" true
    (Result.is_error (Tenant.validate_name (String.make 65 'a')));
  let s1 = Tenant.derive_seed ~tenant:"alice" ~sequence:0 in
  Alcotest.(check bool) "stable" true (s1 = Tenant.derive_seed ~tenant:"alice" ~sequence:0);
  Alcotest.(check bool) "per-sequence" true
    (s1 <> Tenant.derive_seed ~tenant:"alice" ~sequence:1);
  Alcotest.(check bool) "per-tenant" true
    (s1 <> Tenant.derive_seed ~tenant:"bob" ~sequence:0)

let test_tenant_quota () =
  let ten = Tenant.create ~name:"t" ~quota:{ Tenant.max_backlog = 2; max_active = 3 } in
  let admit () = Tenant.admit ten in
  let ok = function Ok (_ : int) -> () | Error _ -> Alcotest.fail "unexpected rejection" in
  ok (admit ());
  Queue.push "t-0" ten.Tenant.pending;
  ok (admit ());
  Queue.push "t-1" ten.Tenant.pending;
  (* backlog full (2 queued) even though active quota has room *)
  Alcotest.(check bool) "backlog full" true (admit () = Error Tenant.Backlog_full);
  (* runner takes one off the queue: backlog has room, but active hits 3 *)
  ignore (Queue.pop ten.Tenant.pending);
  ok (admit ());
  Queue.push "t-2" ten.Tenant.pending;
  ignore (Queue.pop ten.Tenant.pending);
  Alcotest.(check bool) "active quota" true (admit () = Error Tenant.Quota_exceeded);
  (* a finished session frees an active slot *)
  Tenant.finish ten;
  ok (admit ())

(* ---- session ---- *)

let test_session_params_json () =
  let p =
    match
      Session.params_of_json
        (Json.of_string
           {|{"template":"C","programs":4,"seed":"-3","tenant":"ignored"}|})
    with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check string) "template" "C" p.Session.template;
  Alcotest.(check int) "programs" 4 p.Session.programs;
  Alcotest.(check string) "defaulted setup" "mct-vs-mspec" p.Session.setup;
  Alcotest.(check bool) "seed" true (p.Session.seed = Some (-3L));
  Alcotest.(check bool) "unknown field rejected" true
    (Result.is_error (Session.params_of_json (Json.of_string {|{"porgrams":4}|})));
  Alcotest.(check bool) "non-object rejected" true
    (Result.is_error (Session.params_of_json (Json.Arr [])));
  (* round-trip through the meta rendering *)
  match Session.params_of_json (Session.params_to_json p) with
  | Ok p' -> Alcotest.(check bool) "params round-trip" true (p = p')
  | Error e -> Alcotest.fail e

let make_session ?(id = "t-0") () =
  Session.create ~id ~tenant:"t" ~params:Session.default_params ~seed:1L
    ~campaign_name:"c" ~submitted:0 ()

let test_session_stream_semantics () =
  let s = make_session () in
  Session.push_line s "one";
  Session.push_line s "two";
  let lines, next, terminal = Session.lines_from s ~from:0 in
  Alcotest.(check (list string)) "lines" [ "one"; "two" ] lines;
  Alcotest.(check int) "next" 2 next;
  Alcotest.(check bool) "not terminal" false terminal;
  (* a waiter blocked past the end is released by conclude, and the done
     line is already visible when it wakes *)
  let woke = ref [] in
  let waiter =
    Thread.create (fun () -> woke := (fun (l, _, t) -> assert t; l) (Session.wait_lines s ~from:2)) ()
  in
  Thread.yield ();
  Session.conclude s Session.Completed ();
  Thread.join waiter;
  (match !woke with
  | [ done_line ] ->
    Alcotest.(check bool) "done line terminal" true
      (String.length done_line >= 8 && String.sub done_line 0 8 = "{\"done\":")
  | other -> Alcotest.fail (Printf.sprintf "waiter saw %d lines" (List.length other)));
  let all, _, terminal = Session.lines_from s ~from:0 in
  Alcotest.(check int) "terminal stream length" 3 (List.length all);
  Alcotest.(check bool) "terminal" true terminal

(* ---- scheduler: admission control (no runner thread) ---- *)

let sched_config ?state_dir ?(jobs = 1) ?(quota = Tenant.default_quota) () =
  { Scheduler.jobs; state_dir; quota; clock = Stopwatch.frozen }

let small_params = { Session.default_params with Session.programs = 2; tests_per_program = 2 }

let test_scheduler_admission () =
  let quota = { Tenant.max_backlog = 2; max_active = 8 } in
  let t = Scheduler.create ~config:(sched_config ~quota ()) ~start:false () in
  let ok tenant =
    match Scheduler.submit t ~tenant small_params with
    | Ok s -> s
    | Error _ -> Alcotest.fail "unexpected rejection"
  in
  (* invalid input is rejected up front *)
  (match Scheduler.submit t ~tenant:"bad/name" small_params with
  | Error (Scheduler.Invalid _) -> ()
  | _ -> Alcotest.fail "bad tenant accepted");
  (match
     Scheduler.submit t ~tenant:"a"
       { small_params with Session.template = "Z9" }
   with
  | Error (Scheduler.Invalid _) -> ()
  | _ -> Alcotest.fail "bad template accepted");
  (match
     Scheduler.submit t ~tenant:"a" { small_params with Session.setup = "nope" }
   with
  | Error (Scheduler.Invalid _) -> ()
  | _ -> Alcotest.fail "bad setup accepted");
  (* per-tenant backlog: two queued fill tenant a; b is unaffected *)
  let a0 = ok "a" in
  let _a1 = ok "a" in
  (match Scheduler.submit t ~tenant:"a" small_params with
  | Error (Scheduler.Busy Tenant.Backlog_full) -> ()
  | _ -> Alcotest.fail "expected backlog rejection");
  let _b0 = ok "b" in
  (* ids are per-tenant sequences; seeds come from the tenant namespace *)
  Alcotest.(check string) "id" "a-0" a0.Session.id;
  Alcotest.(check bool) "namespace seed" true
    (a0.Session.seed = Tenant.derive_seed ~tenant:"a" ~sequence:0);
  (* cancelling a queued session frees its backlog slot immediately *)
  Alcotest.(check bool) "cancel" true (Scheduler.cancel t a0);
  Alcotest.(check bool) "cancel idempotent" false (Scheduler.cancel t a0);
  Alcotest.(check bool) "terminal" true (Session.state a0 = Session.Cancelled);
  (match Scheduler.submit t ~tenant:"a" small_params with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "slot not freed by cancel");
  (* the cancelled session's stream is exactly one done line *)
  (match Session.lines_from a0 ~from:0 with
  | [ line ], _, true ->
    Alcotest.(check bool) "cancelled done line" true
      (String.length line >= 20 && String.sub line 0 20 = "{\"done\":\"cancelled\"}")
  | lines, _, _ -> Alcotest.fail (Printf.sprintf "stream of %d lines" (List.length lines)));
  Scheduler.shutdown t;
  (* after shutdown: reject new work *)
  match Scheduler.submit t ~tenant:"a" small_params with
  | Error Scheduler.Stopped -> ()
  | _ -> Alcotest.fail "submit after shutdown accepted"

(* ---- scheduler: execution, cancellation, acceptance ---- *)

let wait_terminal s =
  let rec go from =
    let _, next, terminal = Session.wait_lines s ~from in
    if not terminal then go next
  in
  go 0

let test_scheduler_cancel_running () =
  let t = Scheduler.create ~config:(sched_config ()) () in
  let s =
    match
      Scheduler.submit t ~tenant:"c"
        { Session.default_params with Session.programs = 200; tests_per_program = 4 }
    with
    | Ok s -> s
    | Error _ -> Alcotest.fail "submit failed"
  in
  (* wait for the first record, then cancel mid-campaign *)
  let (_ : string list * int * bool) = Session.wait_lines s ~from:0 in
  Alcotest.(check bool) "cancel running" true (Scheduler.cancel t s);
  wait_terminal s;
  Alcotest.(check bool) "cancelled" true (Session.state s = Session.Cancelled);
  (* the drained campaign journals every unfinished program as crashed
     with the normalized cancel reason *)
  let lines, _, _ = Session.lines_from s ~from:0 in
  Alcotest.(check bool) "cancel reason recorded" true
    (List.exists
       (fun l ->
         let n = String.length l and needle = "campaign cancelled" in
         let nn = String.length needle in
         let rec has i = i + nn <= n && (String.sub l i nn = needle || has (i + 1)) in
         has 0)
       lines);
  Scheduler.shutdown t

(* The acceptance check: a served campaign's record stream and journal
   file are byte-identical to a batch Campaign.run of the same
   (template, setup, seed, sizes) under the same frozen clock. *)
let test_scheduler_stream_matches_batch () =
  let dir = Filename.temp_file "scamv_service_state" "" in
  Sys.remove dir;
  let params =
    { Session.default_params with Session.programs = 4; tests_per_program = 3;
      seed = Some 2021L }
  in
  let t = Scheduler.create ~config:(sched_config ~state_dir:dir ~jobs:2 ()) () in
  let s =
    match Scheduler.submit t ~tenant:"acc" params with
    | Ok s -> s
    | Error _ -> Alcotest.fail "submit failed"
  in
  wait_terminal s;
  Alcotest.(check bool) "completed" true (Session.state s = Session.Completed);
  Scheduler.shutdown t;
  (* batch reference, the CLI path: same workload resolution, own journal *)
  let template = Result.get_ok (Workload.lookup_template "A") in
  let setup = Result.get_ok (Workload.lookup_setup "mct-vs-mspec") in
  let cfg =
    Campaign.make
      ~name:(Workload.campaign_name ~setup:"mct-vs-mspec" ~template:"A")
      ~template ~setup ~view:(Workload.view_for "mct-vs-mspec") ~programs:4
      ~tests_per_program:3 ~seed:2021L ~clock:Stopwatch.frozen ()
  in
  let ref_path = temp_path ".journal" in
  Sys.remove ref_path;
  let journal = Journal.create ~path:ref_path () in
  let (_ : Campaign.outcome) = Campaign.run ~journal cfg in
  Journal.close journal;
  let expected = List.map Session.record_line (Journal.events journal) in
  let lines, _, _ = Session.lines_from s ~from:0 in
  let records =
    List.filter
      (fun l -> String.length l >= 10 && String.sub l 0 10 = "{\"record\":")
      lines
  in
  Alcotest.(check bool) "some records" true (expected <> []);
  Alcotest.(check (list string)) "stream matches batch" expected records;
  let served_journal = Filename.concat dir (s.Session.id ^ ".journal") in
  Alcotest.(check string) "journal bytes match batch" (read_file ref_path)
    (read_file served_journal)

let () =
  Alcotest.run "scamv_service"
    [
      ( "http",
        [
          Alcotest.test_case "parses GET with query" `Quick test_http_parse_get;
          Alcotest.test_case "parses POST body" `Quick test_http_parse_post_body;
          Alcotest.test_case "rejects malformed requests" `Quick
            test_http_rejects_malformed;
        ] );
      ( "router",
        [ Alcotest.test_case "dispatch/405/404" `Quick test_router_dispatch ] );
      ( "tenant",
        [
          Alcotest.test_case "names and seed namespace" `Quick
            test_tenant_names_and_seeds;
          Alcotest.test_case "quota admission" `Quick test_tenant_quota;
        ] );
      ( "session",
        [
          Alcotest.test_case "params JSON" `Quick test_session_params_json;
          Alcotest.test_case "stream wait/conclude" `Quick
            test_session_stream_semantics;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "admission control and backpressure" `Quick
            test_scheduler_admission;
          Alcotest.test_case "cancel mid-campaign" `Quick
            test_scheduler_cancel_running;
          Alcotest.test_case "stream and journal match batch run" `Quick
            test_scheduler_stream_matches_batch;
        ] );
    ]
