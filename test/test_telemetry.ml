(* Telemetry laws and the telemetry acceptance criterion: histogram
   bucketing is deterministic, registry merge is associative with the
   empty registry as identity (the same algebra as Stats.merge), and a
   frozen-clock campaign exports byte-identical trace and metrics files
   at --jobs 4 and --jobs 1. *)

module Metrics = Scamv_telemetry.Metrics
module Collector = Scamv_telemetry.Collector
module Export = Scamv_telemetry.Export
module Stopwatch = Scamv_util.Stopwatch
module Campaign = Scamv.Campaign
module Retry = Scamv.Retry
module Stats = Scamv.Stats
module Sat = Scamv_smt.Sat
module Faults = Scamv_microarch.Faults
module Templates = Scamv_gen.Templates
module Refinement = Scamv_models.Refinement

(* ---- histogram bucketing ---- *)

let test_bucket_determinism () =
  let check_bucket v expected =
    Alcotest.(check int)
      (Printf.sprintf "bucket_of %g" v)
      expected (Metrics.bucket_of v)
  in
  (* Non-positive and non-finite values collapse into bucket 0. *)
  check_bucket 0.0 0;
  check_bucket (-1.0) 0;
  check_bucket Float.nan 0;
  check_bucket Float.infinity 0;
  check_bucket Float.neg_infinity 0;
  (* frexp 1.0 = (0.5, 1), so 1.0 lands in bucket 1 + 21 = 22, whose
     exclusive upper bound is 2^(22-21) = 2. *)
  check_bucket 1.0 22;
  check_bucket 1.5 22;
  check_bucket 1.9999 22;
  check_bucket 2.0 23;
  check_bucket 0.5 21;
  (* Extremes clamp to [1, 63] instead of running off the array. *)
  check_bucket Float.min_float 1;
  check_bucket 1e-300 1;
  check_bucket Float.max_float 63;
  check_bucket 1e300 63;
  Alcotest.(check (float 1e-12)) "upper bound of bucket 22" 2.0
    (Metrics.bucket_upper_bound 22);
  Alcotest.(check (float 1e-12)) "upper bound of bucket 21" 1.0
    (Metrics.bucket_upper_bound 21)

let prop_bucket_in_range =
  QCheck.Test.make ~name:"bucket index within [0, 63]" ~count:1000 QCheck.float
    (fun v ->
      let b = Metrics.bucket_of v in
      b >= 0 && b < Metrics.bucket_count)

let prop_bucket_monotone =
  QCheck.Test.make ~name:"bucketing is monotone on positives" ~count:1000
    QCheck.(pair pos_float pos_float)
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      Metrics.bucket_of lo <= Metrics.bucket_of hi)

(* ---- merge laws ---- *)

(* Registries built from integer-valued operations: counters and
   histogram sums then stay exactly representable, so associativity can
   be checked with structural equality (float addition is only exact on
   such values). *)
let apply_ops t ops =
  List.fold_left
    (fun t (kind, which, v) ->
      let name prefix = prefix ^ string_of_int (which mod 3) in
      match kind mod 3 with
      | 0 -> Metrics.add (name "c") v t
      | 1 -> Metrics.set_gauge (name "g") (float_of_int v) t
      | _ -> Metrics.observe (name "h") (float_of_int v) t)
    t ops

let gen_ops =
  QCheck.(small_list (triple (int_bound 2) (int_bound 2) (int_bound 64)))

let prop_merge_associative =
  QCheck.Test.make ~name:"merge is associative" ~count:300
    QCheck.(triple gen_ops gen_ops gen_ops)
    (fun (o1, o2, o3) ->
      let a = apply_ops Metrics.empty o1
      and b = apply_ops Metrics.empty o2
      and c = apply_ops Metrics.empty o3 in
      Metrics.to_list (Metrics.merge (Metrics.merge a b) c)
      = Metrics.to_list (Metrics.merge a (Metrics.merge b c)))

let prop_merge_identity =
  QCheck.Test.make ~name:"empty is a two-sided identity" ~count:300 gen_ops
    (fun ops ->
      let a = apply_ops Metrics.empty ops in
      Metrics.to_list (Metrics.merge Metrics.empty a) = Metrics.to_list a
      && Metrics.to_list (Metrics.merge a Metrics.empty) = Metrics.to_list a)

let test_merge_semantics () =
  let a =
    Metrics.empty |> Metrics.add "c" 2 |> Metrics.set_gauge "g" 1.0
    |> Metrics.observe "h" 3.0
  in
  let b =
    Metrics.empty |> Metrics.add "c" 5 |> Metrics.set_gauge "g" 9.0
    |> Metrics.observe "h" 100.0
  in
  let m = Metrics.merge a b in
  Alcotest.(check int) "counters add" 7 (Metrics.counter m "c");
  Alcotest.(check (option (float 1e-12))) "gauges are right-biased" (Some 9.0)
    (Metrics.gauge m "g");
  Alcotest.(check int) "histogram counts add" 2 (Metrics.histogram_n m "h");
  Alcotest.(check (float 1e-12)) "histogram sums add" 103.0
    (Metrics.histogram_sum m "h");
  Alcotest.(check int) "absent counter reads 0" 0 (Metrics.counter m "nope");
  (match Metrics.merge a (Metrics.observe "c" 1.0 Metrics.empty) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch must raise Invalid_argument")

(* ---- collector spans ---- *)

let test_collector_spans () =
  let c = Collector.create ~clock:Stopwatch.frozen ~track:7 () in
  let result =
    Collector.with_current c (fun () ->
        Collector.span "outer" (fun () ->
            Collector.span "inner" ~args:[ ("k", "v") ] (fun () ->
                Collector.incr "work");
            41 + 1))
  in
  Alcotest.(check int) "span returns the body's value" 42 result;
  let r = Collector.report c in
  (match r.Collector.spans with
  | [ inner; outer ] ->
    Alcotest.(check string) "inner closes first" "inner" inner.Collector.name;
    Alcotest.(check int) "inner depth" 1 inner.Collector.depth;
    Alcotest.(check int) "inner track" 7 inner.Collector.track;
    Alcotest.(check string) "outer name" "outer" outer.Collector.name;
    Alcotest.(check int) "outer depth" 0 outer.Collector.depth
  | spans ->
    Alcotest.fail (Printf.sprintf "expected 2 spans, got %d" (List.length spans)));
  Alcotest.(check int) "counter recorded" 1 (Metrics.counter r.Collector.metrics "work");
  Alcotest.(check int) "span durations feed histograms" 1
    (Metrics.histogram_n r.Collector.metrics "span.inner.seconds");
  (* Outside with_current, everything is a no-op. *)
  Collector.incr "work";
  Collector.span "ignored" (fun () -> ());
  let r' = Collector.report c in
  Alcotest.(check int) "no recording without a current collector" 1
    (Metrics.counter r'.Collector.metrics "work");
  Alcotest.(check int) "no span without a current collector" 2
    (List.length r'.Collector.spans)

let test_collector_span_on_exception () =
  let c = Collector.create ~clock:Stopwatch.frozen () in
  (try
     Collector.with_current c (fun () ->
         Collector.span "failing" (fun () -> failwith "boom"))
   with Failure _ -> ());
  let r = Collector.report c in
  Alcotest.(check int) "span recorded despite the exception" 1
    (List.length r.Collector.spans)

(* ---- frozen-clock campaign: exporters byte-identical across jobs ---- *)

let noisy_cfg () =
  Campaign.make ~name:"telemetry determinism"
    ~template:(Templates.by_name "A")
    ~setup:(Refinement.mct_vs_mspec ())
    ~programs:5 ~tests_per_program:2 ~seed:2021L
    ~sat_budget:(Sat.budget ~conflicts:100 ())
    ~retry:(Retry.make ~max_attempts:3 ())
    ~faults:(Faults.config ~rate:0.1 ~seed:7L ())
    ~clock:Stopwatch.frozen ()

let export_with_jobs jobs =
  let outcome = Campaign.run ~jobs (noisy_cfg ()) in
  let t = outcome.Campaign.telemetry in
  ( Export.trace_string t,
    Export.prometheus t.Collector.metrics,
    outcome.Campaign.stats )

let contains_substring hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_campaign_exports_deterministic_across_jobs () =
  let trace1, metrics1, stats1 = export_with_jobs 1 in
  let trace4, metrics4, stats4 = export_with_jobs 4 in
  Alcotest.(check bool) "campaign did real work" true (stats1.Stats.experiments > 0);
  Alcotest.(check bool) "stats identical" true (stats1 = stats4);
  Alcotest.(check string) "trace JSON byte-identical" trace1 trace4;
  Alcotest.(check string) "metrics dump byte-identical" metrics1 metrics4;
  (* The files actually carry the instrumentation they promise. *)
  List.iter
    (fun span ->
      Alcotest.(check bool) ("trace has span " ^ span) true
        (contains_substring trace1 (Printf.sprintf "%S" span)))
    [ "campaign"; "program"; "prepare"; "annotate"; "lift"; "symexec";
      "synth"; "enumerate"; "execute"; "run" ];
  List.iter
    (fun metric ->
      Alcotest.(check bool) ("metrics has " ^ metric) true
        (contains_substring metrics1 metric))
    [ "scamv_sat_conflicts"; "scamv_sat_queries"; "scamv_smt_blast_cache_hits";
      "scamv_uarch_cache_hits"; "scamv_campaign_experiments";
      "scamv_phase_generation_seconds"; "scamv_phase_execution_seconds" ];
  (* The trace re-parses with our own JSON parser. *)
  match Scamv_util.Json.of_string trace1 with
  | Scamv_util.Json.Obj _ -> ()
  | _ -> Alcotest.fail "trace did not parse back to an object"

let () =
  Alcotest.run "scamv_telemetry"
    [
      ( "metrics",
        [
          Alcotest.test_case "bucket determinism" `Quick test_bucket_determinism;
          QCheck_alcotest.to_alcotest prop_bucket_in_range;
          QCheck_alcotest.to_alcotest prop_bucket_monotone;
          QCheck_alcotest.to_alcotest prop_merge_associative;
          QCheck_alcotest.to_alcotest prop_merge_identity;
          Alcotest.test_case "merge semantics" `Quick test_merge_semantics;
        ] );
      ( "collector",
        [
          Alcotest.test_case "spans and ambient API" `Quick test_collector_spans;
          Alcotest.test_case "span survives exceptions" `Quick
            test_collector_span_on_exception;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "jobs=4 exports byte-identical to jobs=1" `Quick
            test_campaign_exports_deterministic_across_jobs;
        ] );
    ]
