module Bits = Scamv_util.Bits
module Splitmix = Scamv_util.Splitmix
module Summary = Scamv_util.Summary
module Text_table = Scamv_util.Text_table
module Json = Scamv_util.Json

let check = Alcotest.check
let int64 = Alcotest.int64

(* ---- Bits ---- *)

let test_mask () =
  check int64 "mask 0" 0L (Bits.mask 0);
  check int64 "mask 1" 1L (Bits.mask 1);
  check int64 "mask 8" 0xFFL (Bits.mask 8);
  check int64 "mask 63" Int64.max_int (Bits.mask 63);
  check int64 "mask 64" (-1L) (Bits.mask 64)

let test_truncate () =
  check int64 "truncate 8" 0x34L (Bits.truncate 8 0x1234L);
  check int64 "truncate 64 id" (-1L) (Bits.truncate 64 (-1L));
  check int64 "truncate 1" 1L (Bits.truncate 1 0xFFL)

let test_bit_ops () =
  Alcotest.(check bool) "bit 0 of 1" true (Bits.bit 1L 0);
  Alcotest.(check bool) "bit 1 of 1" false (Bits.bit 1L 1);
  Alcotest.(check bool) "bit 63 of -1" true (Bits.bit (-1L) 63);
  check int64 "set bit" 5L (Bits.set_bit 1L 2 true);
  check int64 "clear bit" 1L (Bits.set_bit 5L 2 false)

let test_sign_extend () =
  check int64 "sext 8 of 0x80" (-128L) (Bits.sign_extend 8 0x80L);
  check int64 "sext 8 of 0x7F" 0x7FL (Bits.sign_extend 8 0x7FL);
  check int64 "sext 64 id" (-1L) (Bits.sign_extend 64 (-1L));
  check int64 "sext 1 of 1" (-1L) (Bits.sign_extend 1 1L)

let test_extract () =
  check int64 "extract nibble" 0x3L (Bits.extract ~hi:7 ~lo:4 0x34L);
  check int64 "extract lsb" 0x34L (Bits.extract ~hi:7 ~lo:0 0x1234L);
  check int64 "extract msb" 1L (Bits.extract ~hi:63 ~lo:63 (-1L))

let test_unsigned_compare () =
  Alcotest.(check bool) "ult simple" true (Bits.ult 1L 2L);
  Alcotest.(check bool) "ult wraparound" true (Bits.ult 1L (-1L));
  Alcotest.(check bool) "ult not refl" false (Bits.ult 5L 5L);
  Alcotest.(check bool) "ule refl" true (Bits.ule 5L 5L);
  Alcotest.(check bool) "slt negative" true (Bits.slt ~width:64 (-1L) 0L);
  Alcotest.(check bool) "slt width 8" true (Bits.slt ~width:8 0x80L 0x7FL)

let test_popcount () =
  Alcotest.(check Alcotest.int) "popcount 0" 0 (Bits.popcount 0L);
  Alcotest.(check Alcotest.int) "popcount -1" 64 (Bits.popcount (-1L));
  Alcotest.(check Alcotest.int) "popcount 0b1011" 3 (Bits.popcount 0b1011L)

(* ---- Splitmix ---- *)

let test_rng_deterministic () =
  let g1 = Splitmix.of_seed 42L and g2 = Splitmix.of_seed 42L in
  let v1, _ = Splitmix.next g1 and v2, _ = Splitmix.next g2 in
  check int64 "same seed, same value" v1 v2

let test_rng_seed_sensitivity () =
  let v1, _ = Splitmix.next (Splitmix.of_seed 1L) in
  let v2, _ = Splitmix.next (Splitmix.of_seed 2L) in
  Alcotest.(check bool) "different seeds differ" true (not (Int64.equal v1 v2))

let test_rng_int_bounds () =
  let g = ref (Splitmix.of_seed 7L) in
  for _ = 1 to 1000 do
    let v, g' = Splitmix.int !g 17 in
    g := g';
    Alcotest.(check bool) "in bounds" true (v >= 0 && v < 17)
  done

let test_rng_int_in_bounds () =
  let g = ref (Splitmix.of_seed 7L) in
  for _ = 1 to 1000 do
    let v, g' = Splitmix.int_in !g (-5) 5 in
    g := g';
    Alcotest.(check bool) "in range" true (v >= -5 && v <= 5)
  done

let test_rng_split_independence () =
  let a, b = Splitmix.split (Splitmix.of_seed 9L) in
  let va, _ = Splitmix.next a and vb, _ = Splitmix.next b in
  Alcotest.(check bool) "split streams differ" true (not (Int64.equal va vb))

let test_rng_choose () =
  let v, _ = Splitmix.choose (Splitmix.of_seed 3L) [ "only" ] in
  Alcotest.(check string) "singleton choose" "only" v;
  Alcotest.check_raises "empty choose" (Invalid_argument "Splitmix.choose: empty list")
    (fun () -> ignore (Splitmix.choose (Splitmix.of_seed 3L) []))

let test_rng_shuffle_permutation () =
  let xs = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let ys, _ = Splitmix.shuffle (Splitmix.of_seed 11L) xs in
  Alcotest.(check (list Alcotest.int)) "same multiset" xs (List.sort compare ys)

let prop_rng_float_range =
  QCheck.Test.make ~name:"float stays in [0,1)" ~count:500 QCheck.int64 (fun seed ->
      let v, _ = Splitmix.float (Splitmix.of_seed seed) in
      v >= 0.0 && v < 1.0)

(* ---- Summary ---- *)

let test_summary_empty () =
  Alcotest.(check Alcotest.int) "count" 0 (Summary.count Summary.empty);
  Alcotest.(check (float 1e-9)) "mean" 0.0 (Summary.mean Summary.empty)

let test_summary_accumulate () =
  let s = List.fold_left Summary.add Summary.empty [ 1.0; 2.0; 3.0 ] in
  Alcotest.(check Alcotest.int) "count" 3 (Summary.count s);
  Alcotest.(check (float 1e-9)) "total" 6.0 (Summary.total s);
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Summary.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Summary.min_value s);
  Alcotest.(check (float 1e-9)) "max" 3.0 (Summary.max_value s)

(* ---- Json edge cases ---- *)

let test_json_unicode_escapes () =
  (* \u escapes decode to UTF-8 bytes across the 1-, 2- and 3-byte
     encoding ranges (surrogate pairs are out of scope for the
     benchmark files this parser serves). *)
  let decodes input expected =
    match Json.of_string input with
    | Json.Str s -> Alcotest.(check string) input expected s
    | _ -> Alcotest.fail (Printf.sprintf "%s did not parse to a string" input)
  in
  decodes "\"\\u0041\"" "A";
  decodes "\"\\u00e9\"" "\xc3\xa9";
  decodes "\"\\u20AC\"" "\xe2\x82\xac";
  decodes "\"\\u0000\"" "\x00";
  decodes "\"a\\u0009b\"" "a\tb"

let test_json_control_char_roundtrip () =
  (* The emitter escapes every control character (< 0x20), so strings
     containing them survive an emit/parse round-trip. *)
  let all_controls = String.init 0x20 Char.chr in
  let doc = Json.Obj [ ("ctl", Json.Str all_controls); ("mix", Json.Str "a\x01\x1fz") ] in
  Alcotest.(check bool)
    "control chars round-trip" true
    (Json.of_string (Json.to_string doc) = doc);
  let emitted = Json.to_string (Json.Str "\x01") in
  Alcotest.(check string) "C0 controls use \\u form" "\"\\u0001\"" emitted

let test_json_deep_nesting () =
  let depth = 1000 in
  let deep_arr =
    String.make depth '[' ^ "0" ^ String.make depth ']'
  in
  (match Json.of_string deep_arr with
  | Json.Arr _ as v ->
    Alcotest.(check bool)
      "deep array round-trips" true
      (Json.of_string (Json.to_string v) = v)
  | _ -> Alcotest.fail "deep array did not parse to an array");
  let b = Buffer.create (depth * 8) in
  for _ = 1 to depth do
    Buffer.add_string b {|{"k":|}
  done;
  Buffer.add_string b "null";
  for _ = 1 to depth do
    Buffer.add_char b '}'
  done;
  match Json.of_string (Buffer.contents b) with
  | Json.Obj _ -> ()
  | _ -> Alcotest.fail "deep object did not parse to an object"

let test_json_bad_unicode_escapes_rejected () =
  (* Malformed \u escapes must raise Parse_error — not Failure, and not
     silently accept OCaml-isms like underscore separators. *)
  List.iter
    (fun s ->
      match Json.of_string s with
      | exception Json.Parse_error _ -> ()
      | exception e ->
        Alcotest.fail
          (Printf.sprintf "%S raised %s instead of Parse_error" s
             (Printexc.to_string e))
      | _ -> Alcotest.fail (Printf.sprintf "accepted bad escape %S" s))
    [
      {|"\u"|};
      {|"\u12"|};
      {|"\u12|};
      {|"\uzzzz"|};
      {|"\u1_23"|};
      {|"\u 123"|};
      {|"\u123g"|};
      {|"\x41"|};
    ]

(* ---- Text_table ---- *)

let contains_substring hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_table_renders () =
  let s =
    Text_table.render ~header:[ "a"; "bb" ] ~rows:[ [ "xxx"; "y" ]; [ "1"; "2" ] ]
  in
  Alcotest.(check bool) "contains header" true (contains_substring s "bb");
  Alcotest.(check bool) "contains cell" true (contains_substring s "xxx")

let test_table_ragged_rejected () =
  Alcotest.check_raises "ragged" (Invalid_argument "Text_table.render: ragged row")
    (fun () -> ignore (Text_table.render ~header:[ "a"; "b" ] ~rows:[ [ "1" ] ]))

let () =
  Alcotest.run "scamv_util"
    [
      ( "bits",
        [
          Alcotest.test_case "mask" `Quick test_mask;
          Alcotest.test_case "truncate" `Quick test_truncate;
          Alcotest.test_case "bit get/set" `Quick test_bit_ops;
          Alcotest.test_case "sign_extend" `Quick test_sign_extend;
          Alcotest.test_case "extract" `Quick test_extract;
          Alcotest.test_case "unsigned compare" `Quick test_unsigned_compare;
          Alcotest.test_case "popcount" `Quick test_popcount;
        ] );
      ( "splitmix",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in_bounds;
          Alcotest.test_case "split independence" `Quick test_rng_split_independence;
          Alcotest.test_case "choose" `Quick test_rng_choose;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          QCheck_alcotest.to_alcotest prop_rng_float_range;
        ] );
      ( "summary",
        [
          Alcotest.test_case "empty" `Quick test_summary_empty;
          Alcotest.test_case "accumulate" `Quick test_summary_accumulate;
        ] );
      ( "json",
        [
          Alcotest.test_case "unicode escapes decode" `Quick test_json_unicode_escapes;
          Alcotest.test_case "control chars round-trip" `Quick
            test_json_control_char_roundtrip;
          Alcotest.test_case "deep nesting" `Quick test_json_deep_nesting;
          Alcotest.test_case "bad \\u escapes rejected" `Quick
            test_json_bad_unicode_escapes_rejected;
        ] );
      ( "text_table",
        [
          Alcotest.test_case "renders" `Quick test_table_renders;
          Alcotest.test_case "ragged rejected" `Quick test_table_ragged_rejected;
        ] );
    ]
