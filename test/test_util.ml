module Bits = Scamv_util.Bits
module Splitmix = Scamv_util.Splitmix
module Summary = Scamv_util.Summary
module Text_table = Scamv_util.Text_table
module Json = Scamv_util.Json
module Crc32 = Scamv_util.Crc32
module Deadline = Scamv_util.Deadline
module Chaos = Scamv_util.Chaos
module Stopwatch = Scamv_util.Stopwatch

let check = Alcotest.check
let int64 = Alcotest.int64

(* ---- Bits ---- *)

let test_mask () =
  check int64 "mask 0" 0L (Bits.mask 0);
  check int64 "mask 1" 1L (Bits.mask 1);
  check int64 "mask 8" 0xFFL (Bits.mask 8);
  check int64 "mask 63" Int64.max_int (Bits.mask 63);
  check int64 "mask 64" (-1L) (Bits.mask 64)

let test_truncate () =
  check int64 "truncate 8" 0x34L (Bits.truncate 8 0x1234L);
  check int64 "truncate 64 id" (-1L) (Bits.truncate 64 (-1L));
  check int64 "truncate 1" 1L (Bits.truncate 1 0xFFL)

let test_bit_ops () =
  Alcotest.(check bool) "bit 0 of 1" true (Bits.bit 1L 0);
  Alcotest.(check bool) "bit 1 of 1" false (Bits.bit 1L 1);
  Alcotest.(check bool) "bit 63 of -1" true (Bits.bit (-1L) 63);
  check int64 "set bit" 5L (Bits.set_bit 1L 2 true);
  check int64 "clear bit" 1L (Bits.set_bit 5L 2 false)

let test_sign_extend () =
  check int64 "sext 8 of 0x80" (-128L) (Bits.sign_extend 8 0x80L);
  check int64 "sext 8 of 0x7F" 0x7FL (Bits.sign_extend 8 0x7FL);
  check int64 "sext 64 id" (-1L) (Bits.sign_extend 64 (-1L));
  check int64 "sext 1 of 1" (-1L) (Bits.sign_extend 1 1L)

let test_extract () =
  check int64 "extract nibble" 0x3L (Bits.extract ~hi:7 ~lo:4 0x34L);
  check int64 "extract lsb" 0x34L (Bits.extract ~hi:7 ~lo:0 0x1234L);
  check int64 "extract msb" 1L (Bits.extract ~hi:63 ~lo:63 (-1L))

let test_unsigned_compare () =
  Alcotest.(check bool) "ult simple" true (Bits.ult 1L 2L);
  Alcotest.(check bool) "ult wraparound" true (Bits.ult 1L (-1L));
  Alcotest.(check bool) "ult not refl" false (Bits.ult 5L 5L);
  Alcotest.(check bool) "ule refl" true (Bits.ule 5L 5L);
  Alcotest.(check bool) "slt negative" true (Bits.slt ~width:64 (-1L) 0L);
  Alcotest.(check bool) "slt width 8" true (Bits.slt ~width:8 0x80L 0x7FL)

let test_popcount () =
  Alcotest.(check Alcotest.int) "popcount 0" 0 (Bits.popcount 0L);
  Alcotest.(check Alcotest.int) "popcount -1" 64 (Bits.popcount (-1L));
  Alcotest.(check Alcotest.int) "popcount 0b1011" 3 (Bits.popcount 0b1011L)

(* ---- Splitmix ---- *)

let test_rng_deterministic () =
  let g1 = Splitmix.of_seed 42L and g2 = Splitmix.of_seed 42L in
  let v1, _ = Splitmix.next g1 and v2, _ = Splitmix.next g2 in
  check int64 "same seed, same value" v1 v2

let test_rng_seed_sensitivity () =
  let v1, _ = Splitmix.next (Splitmix.of_seed 1L) in
  let v2, _ = Splitmix.next (Splitmix.of_seed 2L) in
  Alcotest.(check bool) "different seeds differ" true (not (Int64.equal v1 v2))

let test_rng_int_bounds () =
  let g = ref (Splitmix.of_seed 7L) in
  for _ = 1 to 1000 do
    let v, g' = Splitmix.int !g 17 in
    g := g';
    Alcotest.(check bool) "in bounds" true (v >= 0 && v < 17)
  done

let test_rng_int_in_bounds () =
  let g = ref (Splitmix.of_seed 7L) in
  for _ = 1 to 1000 do
    let v, g' = Splitmix.int_in !g (-5) 5 in
    g := g';
    Alcotest.(check bool) "in range" true (v >= -5 && v <= 5)
  done

let test_rng_split_independence () =
  let a, b = Splitmix.split (Splitmix.of_seed 9L) in
  let va, _ = Splitmix.next a and vb, _ = Splitmix.next b in
  Alcotest.(check bool) "split streams differ" true (not (Int64.equal va vb))

let test_rng_choose () =
  let v, _ = Splitmix.choose (Splitmix.of_seed 3L) [ "only" ] in
  Alcotest.(check string) "singleton choose" "only" v;
  Alcotest.check_raises "empty choose" (Invalid_argument "Splitmix.choose: empty list")
    (fun () -> ignore (Splitmix.choose (Splitmix.of_seed 3L) []))

let test_rng_shuffle_permutation () =
  let xs = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let ys, _ = Splitmix.shuffle (Splitmix.of_seed 11L) xs in
  Alcotest.(check (list Alcotest.int)) "same multiset" xs (List.sort compare ys)

let prop_rng_float_range =
  QCheck.Test.make ~name:"float stays in [0,1)" ~count:500 QCheck.int64 (fun seed ->
      let v, _ = Splitmix.float (Splitmix.of_seed seed) in
      v >= 0.0 && v < 1.0)

(* ---- Summary ---- *)

let test_summary_empty () =
  Alcotest.(check Alcotest.int) "count" 0 (Summary.count Summary.empty);
  Alcotest.(check (float 1e-9)) "mean" 0.0 (Summary.mean Summary.empty)

let test_summary_accumulate () =
  let s = List.fold_left Summary.add Summary.empty [ 1.0; 2.0; 3.0 ] in
  Alcotest.(check Alcotest.int) "count" 3 (Summary.count s);
  Alcotest.(check (float 1e-9)) "total" 6.0 (Summary.total s);
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Summary.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Summary.min_value s);
  Alcotest.(check (float 1e-9)) "max" 3.0 (Summary.max_value s)

(* ---- Json edge cases ---- *)

let test_json_unicode_escapes () =
  (* \u escapes up to 0xff decode to the single byte they name (the
     emitter's byte-transparent convention); higher BMP code points decode
     to UTF-8 (surrogate pairs are out of scope for the files this parser
     serves). *)
  let decodes input expected =
    match Json.of_string input with
    | Json.Str s -> Alcotest.(check string) input expected s
    | _ -> Alcotest.fail (Printf.sprintf "%s did not parse to a string" input)
  in
  decodes "\"\\u0041\"" "A";
  decodes "\"\\u00e9\"" "\xe9";
  decodes "\"\\u20AC\"" "\xe2\x82\xac";
  decodes "\"\\u0000\"" "\x00";
  decodes "\"a\\u0009b\"" "a\tb"

let test_json_control_char_roundtrip () =
  (* The emitter escapes every control character (< 0x20), so strings
     containing them survive an emit/parse round-trip. *)
  let all_controls = String.init 0x20 Char.chr in
  let doc = Json.Obj [ ("ctl", Json.Str all_controls); ("mix", Json.Str "a\x01\x1fz") ] in
  Alcotest.(check bool)
    "control chars round-trip" true
    (Json.of_string (Json.to_string doc) = doc);
  let emitted = Json.to_string (Json.Str "\x01") in
  Alcotest.(check string) "C0 controls use \\u form" "\"\\u0001\"" emitted

let prop_json_bytes_roundtrip =
  (* Arbitrary byte strings — control characters, raw high bytes, junk
     that is not UTF-8 — survive emit/parse exactly, and the emitted
     document is pure 7-bit ASCII (wire-safe for streamed journal
     records). *)
  QCheck.Test.make ~name:"arbitrary bytes round-trip through Str" ~count:500
    QCheck.(string_gen (Gen.char_range '\x00' '\xff'))
    (fun s ->
      let doc = Json.Obj [ ("s", Json.Str s); ("l", Json.Arr [ Json.Str s ]) ] in
      let emitted = Json.to_string doc in
      String.for_all (fun c -> Char.code c < 0x80) emitted
      && Json.of_string emitted = doc)

let test_json_write_matches_to_string () =
  (* The incremental channel serializer emits exactly the to_string
     bytes, compact and pretty. *)
  let doc =
    Json.Obj
      [
        ("s", Json.Str "bytes \x00\x7f\xff and \"quotes\"");
        ("n", Json.Num 1.5);
        ("l", Json.Arr [ Json.Null; Json.Bool false; Json.Obj [ ("k", Json.Num 2.) ] ]);
      ]
  in
  let via_channel ?pretty () =
    let path = Filename.temp_file "scamv_json" ".json" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Out_channel.with_open_bin path (fun oc -> Json.write ?pretty oc doc);
        In_channel.with_open_bin path In_channel.input_all)
  in
  Alcotest.(check string) "compact" (Json.to_string doc) (via_channel ());
  Alcotest.(check string) "pretty"
    (Json.to_string ~pretty:true doc)
    (via_channel ~pretty:true ())

let test_json_deep_nesting () =
  let depth = 1000 in
  let deep_arr =
    String.make depth '[' ^ "0" ^ String.make depth ']'
  in
  (match Json.of_string deep_arr with
  | Json.Arr _ as v ->
    Alcotest.(check bool)
      "deep array round-trips" true
      (Json.of_string (Json.to_string v) = v)
  | _ -> Alcotest.fail "deep array did not parse to an array");
  let b = Buffer.create (depth * 8) in
  for _ = 1 to depth do
    Buffer.add_string b {|{"k":|}
  done;
  Buffer.add_string b "null";
  for _ = 1 to depth do
    Buffer.add_char b '}'
  done;
  match Json.of_string (Buffer.contents b) with
  | Json.Obj _ -> ()
  | _ -> Alcotest.fail "deep object did not parse to an object"

let test_json_bad_unicode_escapes_rejected () =
  (* Malformed \u escapes must raise Parse_error — not Failure, and not
     silently accept OCaml-isms like underscore separators. *)
  List.iter
    (fun s ->
      match Json.of_string s with
      | exception Json.Parse_error _ -> ()
      | exception e ->
        Alcotest.fail
          (Printf.sprintf "%S raised %s instead of Parse_error" s
             (Printexc.to_string e))
      | _ -> Alcotest.fail (Printf.sprintf "accepted bad escape %S" s))
    [
      {|"\u"|};
      {|"\u12"|};
      {|"\u12|};
      {|"\uzzzz"|};
      {|"\u1_23"|};
      {|"\u 123"|};
      {|"\u123g"|};
      {|"\x41"|};
    ]

(* ---- Crc32 ---- *)

let test_crc32_vectors () =
  (* The IEEE 802.3 check value, plus edge cases. *)
  Alcotest.(check Alcotest.int) "check value" 0xCBF43926 (Crc32.string "123456789");
  Alcotest.(check Alcotest.int) "empty" 0 (Crc32.string "");
  Alcotest.(check Alcotest.int) "all bytes survive" (Crc32.string "\x00\xff\n")
    (Crc32.string "\x00\xff\n");
  Alcotest.(check bool) "corruption detected" true
    (Crc32.string "journal record" <> Crc32.string "journal recorD")

let test_crc32_update () =
  let whole = Crc32.string "abcdef" in
  Alcotest.(check Alcotest.int) "incremental = whole" whole
    (Crc32.update (Crc32.string "abc") "def");
  Alcotest.(check Alcotest.int) "update from empty" whole (Crc32.update (Crc32.string "") "abcdef")

let test_crc32_hex () =
  Alcotest.(check string) "zero pads" "00000000" (Crc32.to_hex 0);
  Alcotest.(check string) "lower case" "cbf43926" (Crc32.to_hex 0xCBF43926)

(* ---- Deadline ---- *)

let test_deadline_conflicts () =
  let d = Deadline.create (Deadline.Conflicts 3) in
  Alcotest.(check bool) "fresh" false (Deadline.expired d);
  Deadline.tick d 2;
  Alcotest.(check bool) "under limit" false (Deadline.expired d);
  Deadline.tick d 1;
  Alcotest.(check bool) "at limit" true (Deadline.expired d);
  Alcotest.(check Alcotest.int) "used" 3 (Deadline.used d);
  (match Deadline.check d with
  | exception Deadline.Expired _ -> ()
  | () -> Alcotest.fail "check did not raise");
  (* Sticky: once expired, stays expired. *)
  Alcotest.(check bool) "sticky" true (Deadline.expired d)

let test_deadline_wall_frozen () =
  (* Under the frozen clock a wall deadline never advances, so frozen
     (deterministic) campaigns are unaffected by watchdogs. *)
  let d = Deadline.create ~clock:Stopwatch.frozen (Deadline.Wall_seconds 0.001) in
  for _ = 1 to 10_000 do Deadline.tick d 1 done;
  Alcotest.(check bool) "frozen clock never expires" false (Deadline.expired d);
  Deadline.cancel d;
  Alcotest.(check bool) "cancel forces expiry" true (Deadline.expired d)

let test_deadline_invalid () =
  Alcotest.(check bool) "zero conflicts rejected" true
    (match Deadline.create (Deadline.Conflicts 0) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "negative seconds rejected" true
    (match Deadline.create (Deadline.Wall_seconds (-1.0)) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_deadline_ambient () =
  Alcotest.(check bool) "no ambient token" true (Deadline.current () = None);
  (* poll/charge are no-ops without a token. *)
  Deadline.poll ();
  Deadline.charge 5;
  let d = Deadline.create (Deadline.Conflicts 2) in
  let observed =
    Deadline.with_current d (fun () ->
        Deadline.charge 2;
        match Deadline.poll () with
        | exception Deadline.Expired _ -> true
        | () -> false)
  in
  Alcotest.(check bool) "ambient charge expires token" true observed;
  Alcotest.(check bool) "token restored after scope" true (Deadline.current () = None)

(* ---- Chaos ---- *)

let test_chaos_pure_and_rate () =
  let a = Chaos.create ~rate:0.5 ~seed:99L () in
  let b = Chaos.create ~rate:0.5 ~seed:99L () in
  for key = 0 to 499 do
    let k = Int64.of_int key in
    Alcotest.(check bool) "same (seed,site,key) same decision"
      (Chaos.roll a ~site:"pool.worker" ~key:k)
      (Chaos.roll b ~site:"pool.worker" ~key:k)
  done;
  (* Decisions are stateless: re-rolling a key gives the same answer. *)
  Alcotest.(check bool) "re-roll is stable"
    (Chaos.roll a ~site:"pool.worker" ~key:7L)
    (Chaos.roll a ~site:"pool.worker" ~key:7L);
  (* Empirical rate is in the right ballpark for rate 0.5. *)
  let hits = ref 0 in
  for key = 0 to 999 do
    if Chaos.roll a ~site:"rate.check" ~key:(Int64.of_int key) then incr hits
  done;
  Alcotest.(check bool) "rate plausible" true (!hits > 350 && !hits < 650)

let test_chaos_sites_independent () =
  let c = Chaos.create ~rate:0.5 ~seed:3L () in
  let differs = ref false in
  for key = 0 to 63 do
    let k = Int64.of_int key in
    if Chaos.roll c ~site:"journal.poison" ~key:k
       <> Chaos.roll c ~site:"journal.delay" ~key:k
    then differs := true
  done;
  Alcotest.(check bool) "sites draw independently" true !differs

let test_chaos_off_and_invalid () =
  let off = Chaos.create () in
  for key = 0 to 99 do
    Alcotest.(check bool) "rate 0 never injects" false
      (Chaos.roll off ~site:"pool.worker" ~key:(Int64.of_int key))
  done;
  Alcotest.(check Alcotest.int) "no injections counted" 0 (Chaos.injections off);
  Alcotest.(check bool) "rate > 1 rejected" true
    (match Chaos.create ~rate:1.5 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_chaos_kill_counts () =
  let c = Chaos.create ~rate:1.0 ~seed:1L () in
  (match Chaos.kill c ~site:"pool.worker" ~key:0L with
  | exception Chaos.Killed site -> Alcotest.(check string) "site name" "pool.worker" site
  | () -> Alcotest.fail "rate 1 did not kill");
  Alcotest.(check Alcotest.int) "injection counted" 1 (Chaos.injections c)

(* ---- Text_table ---- *)

let contains_substring hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_table_renders () =
  let s =
    Text_table.render ~header:[ "a"; "bb" ] ~rows:[ [ "xxx"; "y" ]; [ "1"; "2" ] ]
  in
  Alcotest.(check bool) "contains header" true (contains_substring s "bb");
  Alcotest.(check bool) "contains cell" true (contains_substring s "xxx")

let test_table_ragged_rejected () =
  Alcotest.check_raises "ragged" (Invalid_argument "Text_table.render: ragged row")
    (fun () -> ignore (Text_table.render ~header:[ "a"; "b" ] ~rows:[ [ "1" ] ]))

let () =
  Alcotest.run "scamv_util"
    [
      ( "bits",
        [
          Alcotest.test_case "mask" `Quick test_mask;
          Alcotest.test_case "truncate" `Quick test_truncate;
          Alcotest.test_case "bit get/set" `Quick test_bit_ops;
          Alcotest.test_case "sign_extend" `Quick test_sign_extend;
          Alcotest.test_case "extract" `Quick test_extract;
          Alcotest.test_case "unsigned compare" `Quick test_unsigned_compare;
          Alcotest.test_case "popcount" `Quick test_popcount;
        ] );
      ( "splitmix",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in_bounds;
          Alcotest.test_case "split independence" `Quick test_rng_split_independence;
          Alcotest.test_case "choose" `Quick test_rng_choose;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          QCheck_alcotest.to_alcotest prop_rng_float_range;
        ] );
      ( "summary",
        [
          Alcotest.test_case "empty" `Quick test_summary_empty;
          Alcotest.test_case "accumulate" `Quick test_summary_accumulate;
        ] );
      ( "json",
        [
          Alcotest.test_case "unicode escapes decode" `Quick test_json_unicode_escapes;
          Alcotest.test_case "control chars round-trip" `Quick
            test_json_control_char_roundtrip;
          Alcotest.test_case "deep nesting" `Quick test_json_deep_nesting;
          Alcotest.test_case "bad \\u escapes rejected" `Quick
            test_json_bad_unicode_escapes_rejected;
          QCheck_alcotest.to_alcotest prop_json_bytes_roundtrip;
          Alcotest.test_case "Json.write matches to_string" `Quick
            test_json_write_matches_to_string;
        ] );
      ( "crc32",
        [
          Alcotest.test_case "vectors" `Quick test_crc32_vectors;
          Alcotest.test_case "incremental update" `Quick test_crc32_update;
          Alcotest.test_case "hex rendering" `Quick test_crc32_hex;
        ] );
      ( "deadline",
        [
          Alcotest.test_case "virtual conflicts" `Quick test_deadline_conflicts;
          Alcotest.test_case "wall under frozen clock" `Quick test_deadline_wall_frozen;
          Alcotest.test_case "invalid specs rejected" `Quick test_deadline_invalid;
          Alcotest.test_case "ambient token" `Quick test_deadline_ambient;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "pure decisions, plausible rate" `Quick
            test_chaos_pure_and_rate;
          Alcotest.test_case "sites independent" `Quick test_chaos_sites_independent;
          Alcotest.test_case "off and invalid rates" `Quick test_chaos_off_and_invalid;
          Alcotest.test_case "kill counts injections" `Quick test_chaos_kill_counts;
        ] );
      ( "text_table",
        [
          Alcotest.test_case "renders" `Quick test_table_renders;
          Alcotest.test_case "ragged rejected" `Quick test_table_ragged_rejected;
        ] );
    ]
