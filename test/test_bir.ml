module Ast = Scamv_isa.Ast
module Reg = Scamv_isa.Reg
module Machine = Scamv_isa.Machine
module Semantics = Scamv_isa.Semantics
module Program = Scamv_bir.Program
module Lifter = Scamv_bir.Lifter
module Obs = Scamv_bir.Obs
module Vars = Scamv_bir.Vars
module Exec = Scamv_symbolic.Exec
module Term = Scamv_smt.Term
module Model = Scamv_smt.Model
module Eval = Scamv_smt.Eval
module Catalog = Scamv_models.Catalog
module Templates = Scamv_gen.Templates
module Gen = Scamv_gen.Gen

let x = Reg.x
let imm v = Ast.Imm v
let reg r = Ast.Reg r
let addr ?(scale = 0) base offset = { Ast.base; offset; scale }

(* ---- Vars ---- *)

let test_vars_naming () =
  Alcotest.(check string) "reg var" "x5" (Vars.reg (x 5));
  Alcotest.(check string) "shadow" "x5_sh" (Vars.shadow "x5");
  Alcotest.(check string) "shadow idempotent" "x5_sh" (Vars.shadow (Vars.shadow "x5"));
  Alcotest.(check bool) "is_shadow" true (Vars.is_shadow "mem_sh");
  Alcotest.(check Alcotest.int) "program vars" 36 (List.length Vars.all_program_vars)

(* ---- Program structure ---- *)

let test_program_validation () =
  let b id term = { Program.id; stmts = []; term } in
  Alcotest.check_raises "duplicate ids"
    (Invalid_argument "Program.make: duplicate block id 0") (fun () ->
      ignore (Program.make ~entry:0 [ b 0 Program.Halt; b 0 Program.Halt ]));
  Alcotest.check_raises "missing entry" (Invalid_argument "Program.make: entry block missing")
    (fun () -> ignore (Program.make ~entry:5 [ b 0 Program.Halt ]));
  Alcotest.check_raises "dangling jump"
    (Invalid_argument "Program.make: block 0 jumps to unknown block 9") (fun () ->
      ignore (Program.make ~entry:0 [ b 0 (Program.Jmp 9) ]))

let test_fresh_id () =
  let b id term = { Program.id; stmts = []; term } in
  let p = Program.make ~entry:0 [ b 0 (Program.Jmp 7); b 7 Program.Halt ] in
  Alcotest.(check Alcotest.int) "fresh above max" 8 (Program.fresh_id p)

(* ---- Lifting ---- *)

let test_lift_block_per_instruction () =
  let p = [| Ast.Mov (x 0, imm 1L); Ast.Nop |] in
  let bir = Lifter.lift p in
  Alcotest.(check Alcotest.int) "blocks = instrs + halt" 3 (List.length (Program.blocks bir));
  match (Program.block bir 2).Program.term with
  | Program.Halt -> ()
  | _ -> Alcotest.fail "last block must halt"

let test_lift_rejects_invalid () =
  Alcotest.(check bool) "invalid program rejected" true
    (try
       ignore (Lifter.lift [| Ast.B 9 |]);
       false
     with Invalid_argument _ -> true)

let test_cond_term_roundtrip () =
  (* cond_term must agree with Semantics.eval_cond on all flag values. *)
  let all_conds =
    [ Ast.Eq; Ast.Ne; Ast.Hs; Ast.Lo; Ast.Hi; Ast.Ls; Ast.Ge; Ast.Lt; Ast.Gt; Ast.Le ]
  in
  List.iter
    (fun c ->
      List.iter
        (fun (n, z, cf, v) ->
          let flags = { Machine.n; z; c = cf; v } in
          let model =
            List.fold_left2
              (fun m name b -> Model.add_var m name (Model.Bool b))
              Model.empty
              [ Vars.flag_n; Vars.flag_z; Vars.flag_c; Vars.flag_v ]
              [ n; z; cf; v ]
          in
          Alcotest.(check bool)
            (Format.asprintf "cond %a" Ast.pp_cond c)
            (Semantics.eval_cond flags c)
            (Eval.eval_bool model (Lifter.cond_term c)))
        (List.concat_map
           (fun n ->
             List.concat_map
               (fun z ->
                 List.concat_map
                   (fun c -> List.map (fun v -> (n, z, c, v)) [ true; false ])
                   [ true; false ])
               [ true; false ])
           [ true; false ]))
    all_conds

(* ---- Symbolic execution ---- *)

let test_symbolic_straightline () =
  let p = [| Ast.Mov (x 0, imm 3L); Ast.Add (x 0, x 0, imm 4L) |] in
  let leaves = Exec.execute (Lifter.lift p) in
  Alcotest.(check Alcotest.int) "one path" 1 (List.length leaves)

let test_symbolic_two_paths () =
  let p =
    [| Ast.Cmp (x 0, imm 5L); Ast.B_cond (Ast.Eq, 3); Ast.Mov (x 1, imm 1L) |]
  in
  let leaves = Exec.execute (Lifter.lift p) in
  Alcotest.(check Alcotest.int) "two paths" 2 (List.length leaves)

let test_symbolic_cycle_detected () =
  let p = [| Ast.B 0 |] in
  Alcotest.check_raises "cycle" Exec.Step_limit_exceeded (fun () ->
      ignore (Exec.execute ~max_steps:64 (Lifter.lift p)))

let test_symbolic_observation_substitution () =
  (* The observed load address must be expressed over *initial* variables:
     x1 is overwritten before the load, so the observation must refer to
     the constant, not to x1. *)
  let p = [| Ast.Mov (x 1, imm 0x40L); Ast.Ldr (x 2, addr (x 1) (imm 0L)) |] in
  let bir = Scamv_models.Model.annotate Catalog.mct p in
  let leaves = Exec.execute bir in
  let leaf = List.hd leaves in
  let load_obs =
    List.find (fun (o : Obs.t) -> o.Obs.kind = "load_addr") leaf.Exec.obs
  in
  match load_obs.Obs.values with
  | [ Term.Bv_const (0x40L, 64) ] -> ()
  | [ t ] -> Alcotest.failf "expected folded constant, got %s" (Term.to_string t)
  | _ -> Alcotest.fail "expected one value"

(* Convert a machine state to a model over canonical variables. *)
let model_of_machine m =
  let model =
    List.fold_left
      (fun acc r -> Model.add_var acc (Vars.reg r) (Model.Bv (Machine.get_reg m r, 64)))
      Model.empty Reg.all
  in
  let f = Machine.get_flags m in
  let model =
    List.fold_left2
      (fun acc name b -> Model.add_var acc name (Model.Bool b))
      model
      [ Vars.flag_n; Vars.flag_z; Vars.flag_c; Vars.flag_v ]
      [ f.Machine.n; f.Machine.z; f.Machine.c; f.Machine.v ]
  in
  List.fold_left
    (fun acc (a, v) -> Model.add_mem_cell acc Vars.mem_name ~addr:a ~value:v)
    model (Machine.mem_bindings m)

let random_machine rng =
  let module Sm = Scamv_util.Splitmix in
  let m = Machine.create () in
  let rng = ref rng in
  List.iter
    (fun r ->
      let v, rng' = Sm.next !rng in
      rng := rng';
      (* Small addresses so loads sometimes alias the stored cells. *)
      Machine.set_reg m r (Int64.logand v 0xFFL))
    Reg.all;
  for _ = 1 to 8 do
    let a, rng' = Sm.next !rng in
    rng := rng';
    let v, rng'' = Sm.next !rng in
    rng := rng'';
    Machine.store m (Int64.logand a 0xFFL) (Int64.logand v 0xFFL)
  done;
  (m, !rng)

(* Differential test: for a random template program and a random initial
   state, the Mct observation trace predicted by symbolic execution must
   equal the addresses/pcs of the concrete architectural run. *)
let prop_symbolic_matches_concrete =
  QCheck.Test.make ~name:"symbolic Mct trace = concrete trace on templates" ~count:150
    QCheck.(pair int64 (int_bound 4))
    (fun (seed, template_idx) ->
      let module Sm = Scamv_util.Splitmix in
      let template =
        List.nth
          [
            Templates.stride;
            Templates.template_a;
            Templates.template_b;
            Templates.template_c;
            Templates.template_d;
          ]
          template_idx
      in
      let { Templates.program; _ } = Gen.generate ~seed template in
      let program =
        match program with
        | Scamv_arch.Isa.Aarch64_program p -> p
        | Scamv_arch.Isa.Riscv_program _ -> assert false
      in
      let machine, rng = random_machine (Sm.of_seed (Int64.add seed 77L)) in
      ignore rng;
      let model = model_of_machine machine in
      let bir = Scamv_models.Model.annotate Catalog.mct program in
      let leaves = Exec.execute bir in
      (* Exactly one path condition must hold for the concrete state. *)
      let holds =
        List.filter (fun (l : Exec.leaf) -> Eval.eval_bool model l.Exec.path_cond) leaves
      in
      match holds with
      | [ leaf ] ->
        let predicted =
          Exec.concrete_obs model leaf
          |> List.filter_map (fun (tag, kind, values) ->
                 match (tag, kind, values) with
                 | Obs.Base, "load_addr", [ a ] -> Some a
                 | _ -> None)
        in
        let concrete_machine = Machine.copy machine in
        let trace = Semantics.run program concrete_machine in
        let actual =
          List.filter_map
            (function
              | Semantics.Load a -> Some a
              | Semantics.Store a -> Some a
              | Semantics.Fetch _ | Semantics.Branch _ -> None)
            trace
        in
        predicted = actual
      | _ -> false)

(* The leaf count of an Mspec-instrumented program must not change the
   architectural paths: shadow blocks are pass-through. *)
let prop_spec_instrumentation_transparent =
  QCheck.Test.make ~name:"speculation stubs preserve path conditions" ~count:100
    QCheck.int64 (fun seed ->
      let { Templates.program; _ } = Gen.generate ~seed Templates.template_b in
      let program =
        match program with
        | Scamv_arch.Isa.Aarch64_program p -> p
        | Scamv_arch.Isa.Riscv_program _ -> assert false
      in
      let plain = Exec.execute (Scamv_models.Model.annotate Catalog.mct program) in
      let instrumented =
        Exec.execute
          (Scamv_models.Refinement.annotate (Scamv_models.Refinement.mct_vs_mspec ()) program)
      in
      List.length plain = List.length instrumented
      && List.for_all2
           (fun (a : Exec.leaf) (b : Exec.leaf) ->
             Term.equal a.Exec.path_cond b.Exec.path_cond)
           plain instrumented)

let test_spec_shadow_load_observed () =
  (* Template-A-shaped program: the wrong-path load must appear as a
     Refined observation on the branch-taken path. *)
  let p =
    [|
      Ast.Ldr (x 2, addr (x 0) (reg (x 1)));
      Ast.Cmp (x 1, reg (x 4));
      Ast.B_cond (Ast.Hs, 4);
      Ast.Ldr (x 5, addr (x 6) (reg (x 2)));
    |]
  in
  let bir = Scamv_models.Refinement.annotate (Scamv_models.Refinement.mct_vs_mspec ()) p in
  let leaves = Exec.execute bir in
  let taken =
    List.find
      (fun (l : Exec.leaf) ->
        not (List.exists (fun b -> b = 3) l.Exec.trace) (* skips the body *))
      leaves
  in
  let refined = List.filter Obs.is_refined taken.Exec.obs in
  Alcotest.(check Alcotest.int) "one transient load observed" 1 (List.length refined);
  let o = List.hd refined in
  Alcotest.(check string) "kind" "spec_load" o.Obs.kind;
  (* The address must mention the memory (through the committed x2 load). *)
  let mentions_mem =
    List.exists
      (fun v -> List.exists (fun (n, _) -> n = Vars.mem_name) (Term.free_vars v))
      o.Obs.values
  in
  Alcotest.(check bool) "address depends on loaded value" true mentions_mem

let test_spec1_tags_first_load_base () =
  (* Template-C-shaped body: under Mspec1-vs-Mspec the first transient
     load is Base, the dependent one Refined. *)
  let p =
    [|
      Ast.Cmp (x 1, reg (x 2));
      Ast.B_cond (Ast.Hs, 4);
      Ast.Ldr (x 6, addr (x 5) (reg (x 3)));
      Ast.Ldr (x 8, addr (x 7) (reg (x 6)));
    |]
  in
  let bir =
    Scamv_models.Refinement.annotate (Scamv_models.Refinement.mspec1_vs_mspec ()) p
  in
  let leaves = Exec.execute bir in
  let taken =
    List.find
      (fun (l : Exec.leaf) -> not (List.exists (fun b -> b = 2) l.Exec.trace))
      leaves
  in
  let spec_obs =
    List.filter (fun (o : Obs.t) -> o.Obs.kind = "spec_load") taken.Exec.obs
  in
  Alcotest.(check Alcotest.int) "two transient loads" 2 (List.length spec_obs);
  (match spec_obs with
  | [ first; second ] ->
    Alcotest.(check bool) "first is base" true (Obs.is_base first);
    Alcotest.(check bool) "second is refined" true (Obs.is_refined second)
  | _ -> Alcotest.fail "expected two observations")

let test_straight_line_instrumentation () =
  let p = [| Ast.B 2; Ast.Ldr (x 1, addr (x 0) (imm 0L)) |] in
  let with_sl =
    Scamv_models.Refinement.annotate
      (Scamv_models.Refinement.mct_vs_mspec_straight_line ())
      p
  in
  let leaves = Exec.execute with_sl in
  let refined = List.concat_map (fun (l : Exec.leaf) -> List.filter Obs.is_refined l.Exec.obs) leaves in
  Alcotest.(check Alcotest.int) "dead load observed transiently" 1 (List.length refined);
  (* Without the straight-line variant there is no refined observation. *)
  let without =
    Scamv_models.Refinement.annotate (Scamv_models.Refinement.mct_vs_mspec ()) p
  in
  let leaves' = Exec.execute without in
  let refined' =
    List.concat_map (fun (l : Exec.leaf) -> List.filter Obs.is_refined l.Exec.obs) leaves'
  in
  Alcotest.(check Alcotest.int) "no observation without Mspec'" 0 (List.length refined')

let () =
  Alcotest.run "scamv_bir"
    [
      ("vars", [ Alcotest.test_case "naming" `Quick test_vars_naming ]);
      ( "program",
        [
          Alcotest.test_case "validation" `Quick test_program_validation;
          Alcotest.test_case "fresh id" `Quick test_fresh_id;
        ] );
      ( "lifter",
        [
          Alcotest.test_case "block per instruction" `Quick test_lift_block_per_instruction;
          Alcotest.test_case "rejects invalid" `Quick test_lift_rejects_invalid;
          Alcotest.test_case "cond_term semantics" `Quick test_cond_term_roundtrip;
        ] );
      ( "symbolic",
        [
          Alcotest.test_case "straight line" `Quick test_symbolic_straightline;
          Alcotest.test_case "two paths" `Quick test_symbolic_two_paths;
          Alcotest.test_case "cycle detected" `Quick test_symbolic_cycle_detected;
          Alcotest.test_case "observation substitution" `Quick
            test_symbolic_observation_substitution;
          QCheck_alcotest.to_alcotest prop_symbolic_matches_concrete;
        ] );
      ( "speculation",
        [
          QCheck_alcotest.to_alcotest prop_spec_instrumentation_transparent;
          Alcotest.test_case "shadow load observed" `Quick test_spec_shadow_load_observed;
          Alcotest.test_case "mspec1 tags" `Quick test_spec1_tags_first_load_base;
          Alcotest.test_case "straight line" `Quick test_straight_line_instrumentation;
        ] );
    ]
