module T = Scamv_smt.Term
module Sort = Scamv_smt.Sort
module Solver = Scamv_smt.Solver
module Model = Scamv_smt.Model
module Eval = Scamv_smt.Eval
module Ast = Scamv_isa.Ast
module Reg = Scamv_isa.Reg
module Machine = Scamv_isa.Machine
module Platform = Scamv_isa.Platform
module Obs = Scamv_bir.Obs
module Exec = Scamv_symbolic.Exec
module Refinement = Scamv_models.Refinement
module Catalog = Scamv_models.Catalog
module Region = Scamv_models.Region
module Synth = Scamv_relation.Synth
module Training = Scamv_relation.Training
module Concretize = Scamv_relation.Concretize

let x = Reg.x
let reg r = Ast.Reg r
let addr base offset = { Ast.base; offset; scale = 0 }
let platform = Platform.cortex_a53

let synth_cfg ~refined = { Synth.platform; require_refined_difference = refined }

let template_a_program =
  [|
    Ast.Ldr (x 2, addr (x 0) (reg (x 1)));
    Ast.Cmp (x 1, reg (x 4));
    Ast.B_cond (Ast.Hs, 4);
    Ast.Ldr (x 5, addr (x 6) (reg (x 2)));
  |]

let leaves_of setup program = Exec.execute (Refinement.annotate setup program)

(* Restrict a model to one state's canonical variables, for evaluating
   leaf formulas (which range over unsuffixed variables). *)
let project_state model suffix =
  let strip name =
    let n = String.length name and k = String.length suffix in
    if n >= k && String.sub name (n - k) k = suffix then Some (String.sub name 0 (n - k))
    else None
  in
  let m =
    List.fold_left
      (fun acc (name, v) ->
        match strip name with Some base -> Model.add_var acc base v | None -> acc)
      Model.empty (Model.vars model)
  in
  List.fold_left
    (fun acc mem ->
      match strip mem with
      | Some base ->
        List.fold_left
          (fun acc (a, v) -> Model.add_mem_cell acc base ~addr:a ~value:v)
          acc (Model.mem_cells model mem)
      | None -> acc)
    m (Model.mems model)

let test_compatible_pairs_diagonal_first () =
  let leaves = leaves_of Refinement.mct_unguided template_a_program in
  let pairs = Synth.compatible_pairs leaves in
  Alcotest.(check bool) "diagonal pairs present" true
    (List.mem (0, 0) pairs && List.mem (1, 1) pairs);
  (* The two paths of template A have different observation counts. *)
  Alcotest.(check bool) "cross pairs incompatible" true
    (not (List.mem (0, 1) pairs))

let test_unguided_pair_solvable_and_equivalent () =
  let leaves = leaves_of Refinement.mct_unguided template_a_program in
  List.iter
    (fun pair ->
      match Synth.pair_relation (synth_cfg ~refined:false) leaves pair with
      | None -> Alcotest.fail "unguided pair must be solvable"
      | Some r -> (
        match Solver.solve r.Synth.assertions with
        | Solver.Unsat -> Alcotest.fail "relation should be satisfiable"
        | Solver.Sat model ->
          (* The model must predict identical Base observation traces. *)
          let leaf1 = List.nth leaves r.Synth.leaf1
          and leaf2 = List.nth leaves r.Synth.leaf2 in
          let m1 = project_state model Synth.suffix1
          and m2 = project_state model Synth.suffix2 in
          let base m leaf =
            Exec.concrete_obs m leaf
            |> List.filter (fun (tag, _, _) -> tag = Obs.Base)
          in
          Alcotest.(check bool) "equal base traces" true
            (base m1 leaf1 = base m2 leaf2)))
    (Synth.compatible_pairs leaves)

let test_refined_pair_forces_difference () =
  let setup = Refinement.mct_vs_mspec () in
  let leaves = leaves_of setup template_a_program in
  let pairs = Synth.compatible_pairs leaves in
  let solvable =
    List.filter_map (fun p -> Synth.pair_relation (synth_cfg ~refined:true) leaves p) pairs
  in
  (* Only the branch-taken path pair has refined (transient) observations. *)
  Alcotest.(check Alcotest.int) "one refinable pair" 1 (List.length solvable);
  let r = List.hd solvable in
  match Solver.solve r.Synth.assertions with
  | Solver.Unsat -> Alcotest.fail "refined relation should be satisfiable"
  | Solver.Sat model ->
    let leaf1 = List.nth leaves r.Synth.leaf1 and leaf2 = List.nth leaves r.Synth.leaf2 in
    let m1 = project_state model Synth.suffix1 and m2 = project_state model Synth.suffix2 in
    let pick tag m leaf =
      Exec.concrete_obs m leaf |> List.filter (fun (t, _, _) -> t = tag)
    in
    Alcotest.(check bool) "base equal" true
      (pick Obs.Base m1 leaf1 = pick Obs.Base m2 leaf2);
    Alcotest.(check bool) "refined differ" false
      (pick Obs.Refined m1 leaf1 = pick Obs.Refined m2 leaf2)

let test_refined_requires_refined_obs () =
  (* A program without branches has no transient observations: refinement
     produces no solvable pair. *)
  let program = [| Ast.Ldr (x 1, addr (x 0) (reg (x 2))) |] in
  let setup = Refinement.mct_vs_mspec () in
  let leaves = leaves_of setup program in
  let pairs = Synth.compatible_pairs leaves in
  let solvable =
    List.filter_map (fun p -> Synth.pair_relation (synth_cfg ~refined:true) leaves p) pairs
  in
  Alcotest.(check Alcotest.int) "nothing to refine" 0 (List.length solvable)

let test_range_constraints_enforced () =
  let setup = Refinement.mct_unguided in
  let leaves = leaves_of setup template_a_program in
  let r =
    Option.get (Synth.pair_relation (synth_cfg ~refined:false) leaves (0, 0))
  in
  match Solver.solve r.Synth.assertions with
  | Solver.Unsat -> Alcotest.fail "satisfiable expected"
  | Solver.Sat model ->
    let s1, s2 = Concretize.test_states model in
    List.iter
      (fun m ->
        let a = Int64.add (Machine.get_reg m (x 0)) (Machine.get_reg m (x 1)) in
        Alcotest.(check bool) "committed address in range" true
          (Platform.in_memory_range platform a))
      [ s1; s2 ]

let test_mpart_relation_matches_paper_shape () =
  (* For Mpart, observationally equivalent states agree on whether each
     access is attacker-visible and, if so, on the address (Sec. 4.2.1). *)
  let region = Region.paper_unaligned platform in
  let program = [| Ast.Ldr (x 1, addr (x 0) (Ast.Imm 0L)) |] in
  let setup = Refinement.mpart_unguided platform region in
  let leaves = leaves_of setup program in
  let r = Option.get (Synth.pair_relation (synth_cfg ~refined:false) leaves (0, 0)) in
  let session = Solver.make_session r.Synth.assertions in
  let distinct_ar = ref 0 in
  for _ = 1 to 20 do
    match Solver.next_model session with
    | Solver.Exhausted | Solver.Budget_exceeded -> ()
    | Solver.Model model ->
      let s1, s2 = Concretize.test_states model in
      let a1 = Machine.get_reg s1 (x 0) and a2 = Machine.get_reg s2 (x 0) in
      let in1 = Region.contains platform region a1
      and in2 = Region.contains platform region a2 in
      Alcotest.(check bool) "AR membership agrees" true (Bool.equal in1 in2);
      if in1 then
        if not (Int64.equal a1 a2) then incr distinct_ar
  done;
  Alcotest.(check Alcotest.int) "AR accesses always equal" 0 !distinct_ar

let test_mpart_refined_forces_set_difference () =
  let region = Region.paper_unaligned platform in
  let program = [| Ast.Ldr (x 1, addr (x 0) (Ast.Imm 0L)) |] in
  let setup = Refinement.mpart_vs_mpart' ~line_coverage:false platform region in
  let leaves = leaves_of setup program in
  let r = Option.get (Synth.pair_relation (synth_cfg ~refined:true) leaves (0, 0)) in
  match Solver.solve r.Synth.assertions with
  | Solver.Unsat -> Alcotest.fail "satisfiable expected"
  | Solver.Sat model ->
    let s1, s2 = Concretize.test_states model in
    let a1 = Machine.get_reg s1 (x 0) and a2 = Machine.get_reg s2 (x 0) in
    Alcotest.(check bool) "both outside AR" true
      ((not (Region.contains platform region a1))
      && not (Region.contains platform region a2));
    Alcotest.(check bool) "different sets" false
      (Platform.set_index platform a1 = Platform.set_index platform a2)

let test_full_equivalence_agrees_with_pairs () =
  (* Eq. 1 over all pairs must accept any model of a per-pair relation. *)
  let leaves = leaves_of Refinement.mct_unguided template_a_program in
  let full = Synth.full_equivalence (synth_cfg ~refined:false) leaves in
  let r = Option.get (Synth.pair_relation (synth_cfg ~refined:false) leaves (0, 0)) in
  match Solver.solve r.Synth.assertions with
  | Solver.Unsat -> Alcotest.fail "satisfiable expected"
  | Solver.Sat model ->
    Alcotest.(check bool) "full relation accepts the pair model" true
      (Eval.eval_bool model full)

let test_coverage_track_names () =
  let region = Region.paper_unaligned platform in
  let setup = Refinement.mpart_vs_mpart' ~line_coverage:true platform region in
  let program = [| Ast.Ldr (x 1, addr (x 0) (Ast.Imm 0L)) |] in
  let leaves = leaves_of setup program in
  let r = Option.get (Synth.pair_relation (synth_cfg ~refined:true) leaves (0, 0)) in
  Alcotest.(check bool) "coverage variables exist" true
    (List.length r.Synth.coverage_track > 0);
  List.iter
    (fun (name, sort) ->
      Alcotest.(check bool) "internal name" true (String.contains name '!');
      match sort with
      | Sort.Bv w -> Alcotest.(check Alcotest.int) "set-index width" 7 w
      | _ -> Alcotest.fail "coverage vars are bitvectors")
    r.Synth.coverage_track

let test_training_states_take_other_path () =
  let setup = Refinement.mct_vs_mspec () in
  let bir = Refinement.annotate setup template_a_program in
  let leaves = Exec.execute bir in
  (* Pair (0,0): find training states; they must drive the program down a
     different block trace than leaf 0. *)
  let train = Training.training_states ~platform ~leaves ~pair:(0, 0) in
  Alcotest.(check bool) "at least one training state" true (train <> []);
  let target_trace = (List.nth leaves 0).Exec.trace in
  List.iter
    (fun st ->
      (* Execute concretely and compare the branch outcome. *)
      let m = Machine.copy st in
      let trace = Scamv_isa.Semantics.run template_a_program m in
      let taken =
        List.find_map
          (function
            | Scamv_isa.Semantics.Branch { taken; _ } -> Some taken
            | _ -> None)
          trace
        |> Option.get
      in
      (* Leaf 0 corresponds to one branch direction; the training state
         must take the other.  Derive leaf 0's direction from its trace. *)
      let leaf0_takes_body = List.mem 3 target_trace in
      Alcotest.(check bool) "opposite direction" true (taken = leaf0_takes_body))
    train

let test_training_states_empty_for_straightline () =
  let program = [| Ast.Ldr (x 1, addr (x 0) (Ast.Imm 0L)) |] in
  let setup = Refinement.mct_unguided in
  let leaves = leaves_of setup program in
  let train = Training.training_states ~platform ~leaves ~pair:(0, 0) in
  Alcotest.(check Alcotest.int) "no branch, no training" 0 (List.length train)

let test_concretize_reads_registers_flags_memory () =
  let model =
    Model.empty
    |> fun m ->
    Model.add_var m "x3_1" (Model.Bv (0xABCL, 64))
    |> fun m ->
    Model.add_var m "zf_1" (Model.Bool true)
    |> fun m -> Model.add_mem_cell m "mem_1" ~addr:0x100L ~value:42L
  in
  let machine = Concretize.machine_of_model ~suffix:"_1" model in
  Alcotest.(check int64) "register" 0xABCL (Machine.get_reg machine (x 3));
  Alcotest.(check bool) "flag" true (Machine.get_flags machine).Machine.z;
  Alcotest.(check int64) "memory" 42L (Machine.load machine 0x100L);
  Alcotest.(check int64) "default zero" 0L (Machine.get_reg machine (x 9))

let () =
  Alcotest.run "scamv_relation"
    [
      ( "pairs",
        [
          Alcotest.test_case "diagonal first" `Quick test_compatible_pairs_diagonal_first;
          Alcotest.test_case "unguided solvable + equivalent" `Quick
            test_unguided_pair_solvable_and_equivalent;
          Alcotest.test_case "refined forces difference" `Quick
            test_refined_pair_forces_difference;
          Alcotest.test_case "refined needs refined obs" `Quick
            test_refined_requires_refined_obs;
          Alcotest.test_case "range constraints" `Quick test_range_constraints_enforced;
          Alcotest.test_case "full equivalence" `Quick test_full_equivalence_agrees_with_pairs;
        ] );
      ( "mpart",
        [
          Alcotest.test_case "paper relation shape" `Quick
            test_mpart_relation_matches_paper_shape;
          Alcotest.test_case "refined set difference" `Quick
            test_mpart_refined_forces_set_difference;
          Alcotest.test_case "coverage track" `Quick test_coverage_track_names;
        ] );
      ( "training",
        [
          Alcotest.test_case "other path" `Quick test_training_states_take_other_path;
          Alcotest.test_case "straight line" `Quick test_training_states_empty_for_straightline;
        ] );
      ( "concretize",
        [
          Alcotest.test_case "registers/flags/memory" `Quick
            test_concretize_reads_registers_flags_memory;
        ] );
    ]
