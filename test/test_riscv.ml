module Rv = Scamv_riscv.Ast
module Rv_sem = Scamv_riscv.Semantics
module Translate = Scamv_riscv.Translate
module Lift = Scamv_riscv.Lift
module Arm = Scamv_isa.Ast
module Arm_sem = Scamv_isa.Semantics
module Machine = Scamv_isa.Machine
module Reg = Scamv_isa.Reg
module Sm = Scamv_util.Splitmix
module Bir = Scamv_bir.Program
module Vars = Scamv_bir.Vars
module Term = Scamv_smt.Term
module Model = Scamv_smt.Model
module Eval = Scamv_smt.Eval

let translate_exn p =
  match Translate.translate p with
  | Ok arm -> arm
  | Error msg -> Alcotest.failf "translation failed: %s" msg

(* ---- direct translations ---- *)

let test_reg_mapping () =
  Alcotest.(check Alcotest.int) "x1 -> x0" 0 (Reg.index (Translate.map_reg (Rv.x 1)));
  Alcotest.(check Alcotest.int) "x31 -> x30" 30 (Reg.index (Translate.map_reg (Rv.x 31)));
  Alcotest.check_raises "x0 unmapped"
    (Invalid_argument "Riscv.Translate.map_reg: x0 has no target register") (fun () ->
      ignore (Translate.map_reg (Rv.x 0)))

let test_li_idiom () =
  (* addi rd, x0, imm is the li pseudo-instruction. *)
  match translate_exn [| Rv.Addi (Rv.x 5, Rv.x 0, 42L) |] with
  | [| Arm.Mov (d, Arm.Imm 42L) |] ->
    Alcotest.(check Alcotest.int) "x5 -> x4" 4 (Reg.index d)
  | p -> Alcotest.failf "unexpected translation: %s" (Arm.to_string p)

let test_writes_to_x0_are_nops () =
  match translate_exn [| Rv.Add (Rv.x 0, Rv.x 1, Rv.x 2) |] with
  | [| Arm.Nop |] -> ()
  | p -> Alcotest.failf "unexpected translation: %s" (Arm.to_string p)

let test_branch_becomes_cmp_pair () =
  let rv = [| Rv.Beq (Rv.x 1, Rv.x 2, 2); Rv.Nop |] in
  match translate_exn rv with
  | [| Arm.Cmp (_, Arm.Reg _); Arm.B_cond (Arm.Eq, 3); Arm.Nop |] -> ()
  | p -> Alcotest.failf "unexpected translation: %s" (Arm.to_string p)

let test_branch_target_remapping () =
  (* The branch skips one RV instruction that expands to two target
     instructions; the target index must account for the expansion. *)
  let rv =
    [|
      Rv.Beq (Rv.x 1, Rv.x 2, 2) (* -> 2 instrs, targets rv index 2 *);
      Rv.Sub (Rv.x 3, Rv.x 0, Rv.x 4) (* -> 2 instrs (mov + sub) *);
      Rv.Nop;
    |]
  in
  match translate_exn rv with
  | [| Arm.Cmp _; Arm.B_cond (Arm.Eq, 4); Arm.Mov _; Arm.Sub _; Arm.Nop |] -> ()
  | p -> Alcotest.failf "unexpected translation: %s" (Arm.to_string p)

let test_zero_comparison_mirrored () =
  (* blt x0, x5, t  means  x5 > 0 (signed). *)
  let rv = [| Rv.Blt (Rv.x 0, Rv.x 5, 1) |] in
  match translate_exn rv with
  | [| Arm.Cmp (_, Arm.Imm 0L); Arm.B_cond (Arm.Gt, _) |] -> ()
  | p -> Alcotest.failf "unexpected translation: %s" (Arm.to_string p)

let test_unsupported_rejected () =
  let rejected p =
    match Translate.translate p with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "load to x0" true (rejected [| Rv.Ld (Rv.x 0, 0L, Rv.x 1) |]);
  Alcotest.(check bool) "store of x0" true (rejected [| Rv.Sd (Rv.x 0, 0L, Rv.x 1) |]);
  Alcotest.(check bool) "x0 addressing" true (rejected [| Rv.Ld (Rv.x 1, 0L, Rv.x 0) |]);
  Alcotest.(check bool) "linking jal" true (rejected [| Rv.Jal (Rv.x 1, 1) |]);
  Alcotest.(check bool) "in-place negation" true
    (rejected [| Rv.Sub (Rv.x 3, Rv.x 0, Rv.x 3) |]);
  Alcotest.(check bool) "invalid target" true (rejected [| Rv.Jal (Rv.x 0, 9) |])

let test_constant_branches () =
  (match translate_exn [| Rv.Beq (Rv.x 0, Rv.x 0, 2); Rv.Nop |] with
  | [| Arm.B 2; Arm.Nop |] -> ()
  | p -> Alcotest.failf "beq x0,x0: %s" (Arm.to_string p));
  match translate_exn [| Rv.Bne (Rv.x 0, Rv.x 0, 2); Rv.Nop |] with
  | [| Arm.Nop; Arm.Nop |] -> ()
  | p -> Alcotest.failf "bne x0,x0: %s" (Arm.to_string p)

(* ---- native semantics ---- *)

let test_rv_x0_hardwired () =
  let s = Rv_sem.create () in
  Rv_sem.set_reg s (Rv.x 0) 99L;
  Alcotest.(check Alcotest.int64) "x0 stays zero" 0L (Rv_sem.get_reg s (Rv.x 0))

let test_rv_branches () =
  let s = Rv_sem.create () in
  Rv_sem.set_reg s (Rv.x 1) (-1L);
  (* blt x1, x0: -1 < 0 signed -> taken; bltu: 0xFF..F < 0 unsigned -> not. *)
  Rv_sem.run [| Rv.Blt (Rv.x 1, Rv.x 0, 2); Rv.Addi (Rv.x 2, Rv.x 0, 1L) |] s;
  Alcotest.(check Alcotest.int64) "signed branch taken" 0L (Rv_sem.get_reg s (Rv.x 2));
  let s = Rv_sem.create () in
  Rv_sem.set_reg s (Rv.x 1) (-1L);
  Rv_sem.run [| Rv.Bltu (Rv.x 1, Rv.x 0, 2); Rv.Addi (Rv.x 2, Rv.x 0, 1L) |] s;
  Alcotest.(check Alcotest.int64) "unsigned branch not taken" 1L (Rv_sem.get_reg s (Rv.x 2))

(* ---- differential translation testing ---- *)

(* Random supported RV64 programs: ALU soup + guarded loads/stores +
   forward branches.  Memory addresses are confined to a small pool so
   loads hit stored cells.  [native] additionally draws the instructions
   only the native lifter accepts: register-amount shifts and linking
   [jal]. *)
let random_program ?(native = false) rng =
  let rng = ref rng in
  let draw n =
    let v, r = Sm.int !rng n in
    rng := r;
    v
  in
  let draw64 () =
    let v, r = Sm.next !rng in
    rng := r;
    v
  in
  let any_reg () = Rv.x (draw 32) in
  let nonzero_reg () = Rv.x (1 + draw 31) in
  let small_imm () = Int64.of_int (draw 256) in
  let n = 4 + draw 8 in
  let instr i =
    match draw (if native then 18 else 14) with
    | 0 -> Rv.Addi (any_reg (), any_reg (), small_imm ())
    | 1 -> Rv.Add (any_reg (), any_reg (), any_reg ())
    | 2 ->
      (* Avoid the unsupported in-place negation alias. *)
      let d = any_reg () in
      let a = any_reg () in
      let b = if a = 0 && d <> 0 then Rv.x (if d = 31 then 30 else d + 1) else any_reg () in
      if a = 0 && d = b then Rv.Nop else Rv.Sub (d, a, b)
    | 3 -> Rv.And_ (any_reg (), any_reg (), any_reg ())
    | 4 -> Rv.Or_ (any_reg (), any_reg (), any_reg ())
    | 5 -> Rv.Xor (any_reg (), any_reg (), any_reg ())
    | 6 -> Rv.Andi (any_reg (), any_reg (), small_imm ())
    | 7 -> Rv.Ori (any_reg (), any_reg (), small_imm ())
    | 8 -> Rv.Slli (any_reg (), any_reg (), draw 64)
    | 9 -> Rv.Srli (any_reg (), any_reg (), draw 64)
    | 10 -> Rv.Srai (any_reg (), any_reg (), draw 64)
    | 11 -> Rv.Ld (nonzero_reg (), Int64.of_int (8 * draw 4), nonzero_reg ())
    | 12 -> Rv.Sd (nonzero_reg (), Int64.of_int (8 * draw 4), nonzero_reg ())
    | 14 -> Rv.Sll (any_reg (), any_reg (), any_reg ())
    | 15 -> Rv.Srl (any_reg (), any_reg (), any_reg ())
    | 16 -> Rv.Sra (any_reg (), any_reg (), any_reg ())
    | 17 -> Rv.Jal (any_reg (), i + 1 + draw (n - i))
    | _ ->
      let target = i + 1 + draw (n - i) in
      (match draw 6 with
      | 0 -> Rv.Beq (any_reg (), any_reg (), target)
      | 1 -> Rv.Bne (any_reg (), any_reg (), target)
      | 2 -> Rv.Blt (any_reg (), any_reg (), target)
      | 3 -> Rv.Bge (any_reg (), any_reg (), target)
      | 4 -> Rv.Bltu (any_reg (), any_reg (), target)
      | _ -> Rv.Bgeu (any_reg (), any_reg (), target))
  in
  let program = Array.init n instr in
  (* Random initial state over a small value domain. *)
  let state = Rv_sem.create () in
  for r = 1 to 31 do
    Rv_sem.set_reg state (Rv.x r) (Int64.logand (draw64 ()) 0xFFL)
  done;
  for _ = 1 to 6 do
    Rv_sem.store state (Int64.logand (draw64 ()) 0xFFL) (Int64.logand (draw64 ()) 0xFFL)
  done;
  (program, state)

let prop_translation_preserves_semantics =
  QCheck.Test.make ~name:"RV64 native run = translated AArch64 run" ~count:500
    QCheck.int64 (fun seed ->
      let program, state = random_program (Sm.of_seed seed) in
      match Translate.translate program with
      | Error _ -> QCheck.assume_fail () (* rare rejected alias patterns *)
      | Ok arm ->
        let machine = Translate.machine_of_state state in
        Rv_sem.run program state;
        ignore (Arm_sem.run arm machine);
        Translate.states_agree state machine)

(* ---- native lifting ---- *)

(* The whole point of the native frontend: every x0 idiom, register-amount
   shift and linking jal the lossy translator rejects lifts cleanly. *)
let test_native_lifter_accepts_translator_rejects () =
  let rejected p =
    match Translate.translate p with Error _ -> true | Ok _ -> false
  in
  let liftable p =
    match Lift.lift p with
    | (_ : Bir.t) -> true
    | exception Invalid_argument _ -> false
  in
  List.iter
    (fun (name, p) ->
      Alcotest.(check bool) (name ^ ": translator rejects") true (rejected p);
      Alcotest.(check bool) (name ^ ": native lifter accepts") true (liftable p))
    [
      ("sll", [| Rv.Sll (Rv.x 3, Rv.x 1, Rv.x 2) |]);
      ("srl", [| Rv.Srl (Rv.x 3, Rv.x 1, Rv.x 2) |]);
      ("sra", [| Rv.Sra (Rv.x 3, Rv.x 1, Rv.x 2) |]);
      ("linking jal", [| Rv.Jal (Rv.x 1, 1) |]);
      ("load to x0", [| Rv.Ld (Rv.x 0, 0L, Rv.x 1) |]);
      ("store of x0", [| Rv.Sd (Rv.x 0, 0L, Rv.x 1) |]);
      ("x0 base address", [| Rv.Ld (Rv.x 1, 0L, Rv.x 0) |]);
      ("in-place negation", [| Rv.Sub (Rv.x 3, Rv.x 0, Rv.x 3) |]);
    ]

(* Concrete BIR interpretation: walk the blocks from the entry under a
   model, evaluating assignments as they come.  Store chains are a single
   [Store] per Sd, so memory updates reduce to one cell write. *)
let exec_bir bir model0 =
  let model = ref model0 in
  let steps = ref 0 in
  let rec go bid =
    incr steps;
    if !steps > 4096 then Alcotest.fail "exec_bir: cyclic program";
    let b = Bir.block bir bid in
    List.iter
      (function
        | Bir.Assign (v, e) when v = Vars.mem_name -> (
          match e with
          | Term.Store (_, a, value) ->
            let addr = Eval.eval_bv !model a in
            let value = Eval.eval_bv !model value in
            model := Model.add_mem_cell !model Vars.mem_name ~addr ~value
          | _ -> Alcotest.fail "exec_bir: unexpected memory assignment shape")
        | Bir.Assign (v, e) ->
          let value =
            if List.mem v [ Vars.flag_n; Vars.flag_z; Vars.flag_c; Vars.flag_v ]
            then Model.Bool (Eval.eval_bool !model e)
            else Model.Bv (Eval.eval_bv !model e, 64)
          in
          model := Model.add_var !model v value
        | Bir.Observe _ -> ())
      b.Bir.stmts;
    match b.Bir.term with
    | Bir.Halt -> ()
    | Bir.Jmp t -> go t
    | Bir.Cjmp (c, t, f) -> go (if Eval.eval_bool !model c then t else f)
  in
  go (Bir.entry bir);
  !model

let rv_regs = List.init 31 (fun i -> Rv.x (i + 1))

let model_of_rv_state s =
  let model =
    List.fold_left
      (fun m r ->
        Model.add_var m (Lift.reg_var r) (Model.Bv (Rv_sem.get_reg s r, 64)))
      Model.empty rv_regs
  in
  List.fold_left
    (fun m (addr, value) -> Model.add_mem_cell m Vars.mem_name ~addr ~value)
    model (Rv_sem.mem_bindings s)

(* Differential vs the reference interpreter, over the FULL native
   instruction set (register-amount shifts, linking jal, x0 idioms). *)
let prop_native_lift_matches_interpreter =
  QCheck.Test.make ~name:"natively lifted BIR = RV64 interpreter" ~count:500
    QCheck.int64 (fun seed ->
      let program, state = random_program ~native:true (Sm.of_seed seed) in
      let final = exec_bir (Lift.lift program) (model_of_rv_state state) in
      Rv_sem.run program state;
      List.for_all
        (fun r -> Eval.eval_bv final (Lift.reg_term r) = Rv_sem.get_reg state r)
        rv_regs
      && List.for_all
           (fun (addr, value) ->
             Eval.eval_bv final
               (Term.select Vars.mem_term (Term.bv_const addr 64))
             = value)
           (Rv_sem.mem_bindings state))

(* On the subset both frontends accept, the native lift and the
   translate-then-lift route must compute the same final registers (RV64
   x[k] lives in machine slot k-1 on the translated side). *)
let model_of_machine m =
  let model =
    List.fold_left
      (fun acc r ->
        Model.add_var acc (Vars.reg r) (Model.Bv (Machine.get_reg m r, 64)))
      Model.empty Reg.all
  in
  let f = Machine.get_flags m in
  let model =
    List.fold_left2
      (fun acc name b -> Model.add_var acc name (Model.Bool b))
      model
      [ Vars.flag_n; Vars.flag_z; Vars.flag_c; Vars.flag_v ]
      [ f.Machine.n; f.Machine.z; f.Machine.c; f.Machine.v ]
  in
  List.fold_left
    (fun acc (a, v) -> Model.add_mem_cell acc Vars.mem_name ~addr:a ~value:v)
    model (Machine.mem_bindings m)

let prop_native_lift_agrees_with_translator =
  QCheck.Test.make ~name:"native lift = translate + lift on the common subset"
    ~count:300 QCheck.int64 (fun seed ->
      let program, state = random_program (Sm.of_seed seed) in
      match Translate.translate program with
      | Error _ -> QCheck.assume_fail ()
      | Ok arm ->
        let native = exec_bir (Lift.lift program) (model_of_rv_state state) in
        let translated =
          exec_bir (Scamv_bir.Lifter.lift arm)
            (model_of_machine (Translate.machine_of_state state))
        in
        List.for_all
          (fun k ->
            Eval.eval_bv native (Lift.reg_term (Rv.x k))
            = Eval.eval_bv translated
                (Term.bv_var (Vars.reg (Reg.x (k - 1))) 64))
          (List.init 31 (fun i -> i + 1)))

(* The translated program also runs unchanged through the full pipeline:
   a Spectre gadget written in RV64 yields counterexamples. *)
let test_translated_gadget_through_pipeline () =
  (* ld x3, 0(x1); bge x3, x2, end; ld x5, 0(x3)  -- SiSCloak shape *)
  let rv =
    [|
      Rv.Ld (Rv.x 3, 0L, Rv.x 1);
      Rv.Bge (Rv.x 3, Rv.x 2, 3);
      Rv.Ld (Rv.x 5, 0L, Rv.x 3);
    |]
  in
  let arm = translate_exn rv in
  let guest = Scamv_arch.Isa.Aarch64_program arm in
  let setup = Scamv_models.Refinement.mct_vs_mspec () in
  let cfg = Scamv.Pipeline.default_config setup in
  let session = Scamv.Pipeline.prepare ~seed:3L cfg guest in
  match Scamv.Pipeline.next_test_case session with
  | Scamv.Pipeline.Exhausted | Scamv.Pipeline.Quarantined _
  | Scamv.Pipeline.Crashed _ ->
    Alcotest.fail "expected a test case from the translated gadget"
  | Scamv.Pipeline.Case tc ->
    let verdict =
      Scamv_microarch.Executor.run
        (Scamv_microarch.Executor.default_config ())
        {
          Scamv_microarch.Executor.program = guest;
          state1 = tc.Scamv.Pipeline.state1;
          state2 = tc.Scamv.Pipeline.state2;
          train = tc.Scamv.Pipeline.train;
        }
    in
    Alcotest.(check bool) "speculative leak found" true
      (verdict = Scamv_microarch.Executor.Distinguishable)

(* The same gadget, natively: the RV64 pipeline (native lift, flagless
   concretization, compare-and-branch speculation on the simulated core)
   also finds the speculative leak. *)
let test_native_gadget_through_pipeline () =
  let rv =
    [|
      Rv.Ld (Rv.x 3, 0L, Rv.x 1);
      Rv.Bge (Rv.x 3, Rv.x 2, 3);
      Rv.Ld (Rv.x 5, 0L, Rv.x 3);
    |]
  in
  let guest = Scamv_arch.Isa.Riscv_program rv in
  let setup = Scamv_models.Refinement.mct_vs_mspec () in
  let cfg = Scamv.Pipeline.default_config ~isa:Scamv_arch.Isa.Riscv setup in
  let session = Scamv.Pipeline.prepare ~seed:3L cfg guest in
  match Scamv.Pipeline.next_test_case session with
  | Scamv.Pipeline.Exhausted | Scamv.Pipeline.Quarantined _
  | Scamv.Pipeline.Crashed _ ->
    Alcotest.fail "expected a test case from the native gadget"
  | Scamv.Pipeline.Case tc ->
    let verdict =
      Scamv_microarch.Executor.run
        (Scamv_microarch.Executor.default_config ())
        {
          Scamv_microarch.Executor.program = guest;
          state1 = tc.Scamv.Pipeline.state1;
          state2 = tc.Scamv.Pipeline.state2;
          train = tc.Scamv.Pipeline.train;
        }
    in
    Alcotest.(check bool) "speculative leak found" true
      (verdict = Scamv_microarch.Executor.Distinguishable)

let () =
  Alcotest.run "scamv_riscv"
    [
      ( "translate",
        [
          Alcotest.test_case "register mapping" `Quick test_reg_mapping;
          Alcotest.test_case "li idiom" `Quick test_li_idiom;
          Alcotest.test_case "x0 writes are nops" `Quick test_writes_to_x0_are_nops;
          Alcotest.test_case "branch becomes cmp pair" `Quick test_branch_becomes_cmp_pair;
          Alcotest.test_case "target remapping" `Quick test_branch_target_remapping;
          Alcotest.test_case "zero comparison mirrored" `Quick test_zero_comparison_mirrored;
          Alcotest.test_case "unsupported rejected" `Quick test_unsupported_rejected;
          Alcotest.test_case "constant branches" `Quick test_constant_branches;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "x0 hardwired" `Quick test_rv_x0_hardwired;
          Alcotest.test_case "signed/unsigned branches" `Quick test_rv_branches;
        ] );
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_translation_preserves_semantics;
          Alcotest.test_case "gadget through pipeline" `Quick
            test_translated_gadget_through_pipeline;
        ] );
      ( "native lift",
        [
          Alcotest.test_case "accepts what the translator rejects" `Quick
            test_native_lifter_accepts_translator_rejects;
          QCheck_alcotest.to_alcotest prop_native_lift_matches_interpreter;
          QCheck_alcotest.to_alcotest prop_native_lift_agrees_with_translator;
          Alcotest.test_case "native gadget through pipeline" `Quick
            test_native_gadget_through_pipeline;
        ] );
    ]
