module Ast = Scamv_isa.Ast
module Reg = Scamv_isa.Reg
module Machine = Scamv_isa.Machine
module Platform = Scamv_isa.Platform
module Cache = Scamv_microarch.Cache
module Prefetcher = Scamv_microarch.Prefetcher
module Predictor = Scamv_microarch.Predictor
module Core = Scamv_microarch.Core
module Executor = Scamv_microarch.Executor
module Flush_reload = Scamv_microarch.Flush_reload
module Splitmix = Scamv_util.Splitmix

let x = Reg.x
let imm v = Ast.Imm v
let reg r = Ast.Reg r
let addr ?(scale = 0) base offset = { Ast.base; offset; scale }
let platform = Platform.cortex_a53

(* Deterministic core config: prefetcher always fires, no noise. *)
let quiet_config =
  {
    Core.cortex_a53 with
    Core.prefetch_fire_prob = 1.0;
    mispredict_noise = 0.0;
  }

(* ---- Cache ---- *)

let test_cache_miss_then_hit () =
  let c = Cache.create platform in
  Alcotest.(check bool) "first access misses" true (Cache.access c 0x1000L = `Miss);
  Alcotest.(check bool) "second access hits" true (Cache.access c 0x1000L = `Hit);
  Alcotest.(check bool) "same line hits" true (Cache.access c 0x103FL = `Hit);
  Alcotest.(check bool) "next line misses" true (Cache.access c 0x1040L = `Miss)

let test_cache_lru_eviction () =
  let c = Cache.create platform in
  (* Five addresses mapping to set 0 (stride = sets * line = 8192). *)
  let a i = Int64.of_int (i * 8192) in
  for i = 0 to 4 do
    ignore (Cache.access c (a i))
  done;
  Alcotest.(check bool) "oldest evicted" false (Cache.contains c (a 0));
  Alcotest.(check bool) "newest present" true (Cache.contains c (a 4));
  Alcotest.(check bool) "second present" true (Cache.contains c (a 1))

let test_cache_lru_touch_refreshes () =
  let c = Cache.create platform in
  let a i = Int64.of_int (i * 8192) in
  for i = 0 to 3 do
    ignore (Cache.access c (a i))
  done;
  ignore (Cache.access c (a 0)) (* refresh LRU position *);
  ignore (Cache.access c (a 4)) (* evicts a1, not a0 *);
  Alcotest.(check bool) "refreshed survives" true (Cache.contains c (a 0));
  Alcotest.(check bool) "stale evicted" false (Cache.contains c (a 1))

let test_cache_flush () =
  let c = Cache.create platform in
  ignore (Cache.access c 0x2000L);
  Cache.flush_line c 0x2010L;
  Alcotest.(check bool) "flushed" false (Cache.contains c 0x2000L)

let test_cache_snapshot () =
  let c = Cache.create platform in
  ignore (Cache.access c 0x0L);
  ignore (Cache.access c 0x40L);
  let snap = Cache.snapshot c in
  Alcotest.(check Alcotest.int) "two sets" 2 (List.length snap);
  Alcotest.(check bool) "region filter" true
    (Cache.snapshot_region c ~first_set:1 ~last_set:1 = [ (1, [ 0x40L ]) ]);
  Alcotest.(check bool) "equal to itself" true (Cache.equal_snapshot snap snap);
  Cache.reset c;
  Alcotest.(check bool) "reset clears" true (Cache.snapshot c = [])

let test_cache_snapshot_ignores_lru_order () =
  let c1 = Cache.create platform and c2 = Cache.create platform in
  ignore (Cache.access c1 0x0L);
  ignore (Cache.access c1 8192L);
  ignore (Cache.access c2 8192L);
  ignore (Cache.access c2 0x0L);
  Alcotest.(check bool) "order-insensitive" true
    (Cache.equal_snapshot (Cache.snapshot c1) (Cache.snapshot c2))

(* ---- Prefetcher ---- *)

let observe_seq p addrs =
  let rng = ref (Splitmix.of_seed 1L) in
  List.filter_map (fun a -> Prefetcher.observe p ~rng a) addrs

let test_prefetcher_fires_after_threshold () =
  let p = Prefetcher.create ~fire_prob:1.0 platform in
  let fires = observe_seq p [ 0L; 64L; 128L ] in
  Alcotest.(check (list Alcotest.int64)) "fires at third access" [ 192L ] fires

let test_prefetcher_needs_constant_stride () =
  let p = Prefetcher.create ~fire_prob:1.0 platform in
  let fires = observe_seq p [ 0L; 64L; 256L ] in
  Alcotest.(check (list Alcotest.int64)) "irregular stride silent" [] fires

let test_prefetcher_stops_at_page_boundary () =
  let p = Prefetcher.create ~fire_prob:1.0 platform in
  (* Stride 64 approaching the 4 KiB boundary: last access 0xFC0,
     candidate 0x1000 is on the next page. *)
  let fires = observe_seq p [ 0xE80L; 0xEC0L; 0xF00L; 0xF40L; 0xF80L; 0xFC0L ] in
  Alcotest.(check bool) "never crosses page" true
    (List.for_all (fun a -> Int64.unsigned_compare a 0x1000L < 0) fires);
  Alcotest.(check bool) "did fire within page" true (fires <> [])

let test_prefetcher_large_stride () =
  let p = Prefetcher.create ~fire_prob:1.0 platform in
  let fires = observe_seq p [ 0L; 128L; 256L ] in
  Alcotest.(check (list Alcotest.int64)) "stride 128" [ 384L ] fires

let test_prefetcher_probabilistic () =
  let p = Prefetcher.create ~fire_prob:0.0 platform in
  let fires = observe_seq p [ 0L; 64L; 128L; 192L ] in
  Alcotest.(check (list Alcotest.int64)) "never fires at prob 0" [] fires

let test_prefetcher_reset () =
  let p = Prefetcher.create ~fire_prob:1.0 platform in
  ignore (observe_seq p [ 0L; 64L ]);
  Prefetcher.reset p;
  let fires = observe_seq p [ 128L ] in
  Alcotest.(check (list Alcotest.int64)) "no stale stream" [] fires

(* ---- Predictor ---- *)

let test_predictor_default_not_taken () =
  let p = Predictor.create () in
  Alcotest.(check bool) "untrained predicts not taken" false (Predictor.predict p 3)

let test_predictor_training () =
  let p = Predictor.create () in
  Predictor.update p 3 ~taken:true;
  Alcotest.(check bool) "weakly taken" true (Predictor.predict p 3);
  Predictor.update p 3 ~taken:false;
  Predictor.update p 3 ~taken:false;
  Alcotest.(check bool) "retrained not taken" false (Predictor.predict p 3)

let test_predictor_saturation () =
  let p = Predictor.create () in
  for _ = 1 to 10 do
    Predictor.update p 3 ~taken:true
  done;
  Alcotest.(check Alcotest.int) "saturates at 3" 3 (Predictor.counter p 3);
  Predictor.update p 3 ~taken:false;
  Alcotest.(check bool) "one miss keeps prediction" true (Predictor.predict p 3)

let test_predictor_indexed_by_pc () =
  let p = Predictor.create () in
  Predictor.update p 1 ~taken:true;
  Predictor.update p 1 ~taken:true;
  Alcotest.(check bool) "other pc unaffected" false (Predictor.predict p 2)

(* ---- Core: committed execution ---- *)

let test_core_commit_loads_fill_cache () =
  let core = Core.create quiet_config in
  let m = Machine.create () in
  Machine.set_reg m (x 0) 0x8000_0000L;
  let events = Core.run core [| Ast.Ldr (x 1, addr (x 0) (imm 0L)) |] m in
  Alcotest.(check bool) "line cached" true (Cache.contains (Core.cache core) 0x8000_0000L);
  Alcotest.(check bool) "load event" true
    (List.exists (function Core.Commit_load 0x8000_0000L -> true | _ -> false) events)

let test_core_stride_triggers_prefetch () =
  let core = Core.create quiet_config in
  let m = Machine.create () in
  Machine.set_reg m (x 0) 0x8000_0000L;
  let program =
    [|
      Ast.Ldr (x 1, addr (x 0) (imm 0L));
      Ast.Ldr (x 2, addr (x 0) (imm 64L));
      Ast.Ldr (x 3, addr (x 0) (imm 128L));
    |]
  in
  let events = Core.run core program m in
  Alcotest.(check bool) "prefetch event" true
    (List.exists (function Core.Prefetch 0x8000_00C0L -> true | _ -> false) events);
  Alcotest.(check bool) "prefetched line cached" true
    (Cache.contains (Core.cache core) 0x8000_00C0L)

let test_core_architectural_equivalence () =
  (* The core must compute the same architectural result as the reference
     semantics, speculation and caches notwithstanding. *)
  let program =
    [|
      Ast.Mov (x 0, imm 0x8000_0100L);
      Ast.Str (x 0, addr (x 0) (imm 0L));
      Ast.Ldr (x 1, addr (x 0) (imm 0L));
      Ast.Cmp (x 1, reg (x 0));
      Ast.B_cond (Ast.Eq, 6);
      Ast.Mov (x 2, imm 1L);
      Ast.Add (x 3, x 1, imm 2L);
    |]
  in
  let m1 = Machine.create () and m2 = Machine.create () in
  ignore (Core.run (Core.create quiet_config) program m1);
  ignore (Scamv_isa.Semantics.run program m2);
  Alcotest.(check bool) "architecturally equal" true (Machine.equal_arch m1 m2)

(* ---- Core: speculation ---- *)

(* Template-A shape: committed load, compare on registers, guarded load.
   Returns (events, core) after a run with the predictor trained to take
   the wrong direction. *)
let spectre_program =
  [|
    Ast.Ldr (x 2, addr (x 0) (reg (x 1)));
    Ast.Cmp (x 1, reg (x 4));
    Ast.B_cond (Ast.Hs, 4);
    Ast.Ldr (x 5, addr (x 6) (reg (x 2)));
  |]

let spectre_guest = Scamv_arch.Isa.Aarch64_program spectre_program

let train_and_run ?(config = quiet_config) program ~train_state ~state =
  let core = Core.create config in
  for _ = 1 to 5 do
    Core.reset_cache core;
    ignore (Core.run core program (Machine.copy train_state))
  done;
  Core.reset_cache core;
  let events = Core.run core program (Machine.copy state) in
  (events, core)

let spectre_states () =
  (* state: x1 >= x4 -> branch taken (skip body); training state takes
     the body. *)
  let s = Machine.create () in
  Machine.set_reg s (x 0) 0x8000_0000L;
  Machine.set_reg s (x 1) 8L;
  Machine.set_reg s (x 4) 4L;
  Machine.set_reg s (x 6) 0x8010_0000L;
  Machine.store s 0x8000_0008L 0x4000L (* the secret *);
  let t = Machine.copy s in
  Machine.set_reg t (x 1) 2L (* x1 < x4: executes the body *);
  (s, t)

let test_core_transient_load_issues () =
  let s, t = spectre_states () in
  let events, core = train_and_run spectre_program ~train_state:t ~state:s in
  let mispredicted =
    List.exists
      (function
        | Core.Commit_branch { taken = true; predicted = false; _ } -> true
        | _ -> false)
      events
  in
  Alcotest.(check bool) "branch mispredicted after training" true mispredicted;
  (* The transient load address is x6 + mem[x0+x1] = 0x80100000 + 0x4000. *)
  Alcotest.(check bool) "transient load issued" true
    (List.exists (function Core.Transient_load 0x8010_4000L -> true | _ -> false) events);
  Alcotest.(check bool) "secret-dependent line cached" true
    (Cache.contains (Core.cache core) 0x8010_4000L)

let test_core_no_speculation_without_training () =
  let s, _ = spectre_states () in
  let core = Core.create quiet_config in
  let events = Core.run core spectre_program (Machine.copy s) in
  (* Untrained predictor predicts not-taken; actual outcome is taken, so
     there IS a misprediction; but with an untrained predictor both
     predictions are possible — here counters start at weakly-not-taken,
     actual is taken -> mispredict -> transient path is the *body*. *)
  Alcotest.(check bool) "transient load from cold predictor" true
    (List.exists (function Core.Transient_load _ -> true | _ -> false) events)

let test_core_correct_prediction_no_transient () =
  let s, _ = spectre_states () in
  (* Train with the same state so the predictor agrees with the outcome. *)
  let events, _ = train_and_run spectre_program ~train_state:s ~state:s in
  Alcotest.(check bool) "no transient events" true
    (not (List.exists (function Core.Transient_load _ -> true | _ -> false) events))

let test_core_dependent_transient_load_suppressed () =
  (* Template-C shape: both loads inside the branch body; the second
     depends on the first's result and must not issue. *)
  let program =
    [|
      Ast.Cmp (x 1, reg (x 2));
      Ast.B_cond (Ast.Hs, 4);
      Ast.Ldr (x 6, addr (x 5) (reg (x 3)));
      Ast.Ldr (x 8, addr (x 7) (reg (x 6)));
    |]
  in
  let s = Machine.create () in
  Machine.set_reg s (x 1) 8L;
  Machine.set_reg s (x 2) 4L (* taken: skip body *);
  Machine.set_reg s (x 5) 0x8000_0000L;
  Machine.set_reg s (x 7) 0x8010_0000L;
  let t = Machine.copy s in
  Machine.set_reg t (x 1) 1L (* body path, for training *);
  let events, _ = train_and_run program ~train_state:t ~state:s in
  let transient_loads =
    List.filter (function Core.Transient_load _ -> true | _ -> false) events
  in
  let suppressed =
    List.filter (function Core.Transient_suppressed _ -> true | _ -> false) events
  in
  Alcotest.(check Alcotest.int) "only the first load issues" 1
    (List.length transient_loads);
  Alcotest.(check Alcotest.int) "dependent load suppressed" 1 (List.length suppressed)

let test_core_taint_through_alu () =
  (* The dependency is laundered through an ADD: still suppressed. *)
  let program =
    [|
      Ast.Cmp (x 1, reg (x 2));
      Ast.B_cond (Ast.Hs, 5);
      Ast.Ldr (x 6, addr (x 5) (reg (x 3)));
      Ast.Add (x 9, x 6, imm 8L);
      Ast.Ldr (x 8, addr (x 7) (reg (x 9)));
    |]
  in
  let s = Machine.create () in
  Machine.set_reg s (x 1) 8L;
  Machine.set_reg s (x 2) 4L;
  Machine.set_reg s (x 5) 0x8000_0000L;
  let t = Machine.copy s in
  Machine.set_reg t (x 1) 1L;
  let events, _ = train_and_run program ~train_state:t ~state:s in
  Alcotest.(check Alcotest.int) "one issue, one suppression" 1
    (List.length (List.filter (function Core.Transient_load _ -> true | _ -> false) events))

let test_core_independent_loads_need_slow_branch () =
  (* Two independent loads in the body: with a register-only compare the
     branch resolves fast and only one issues; if the compare waits on a
     load, the window extends and both issue. *)
  let body =
    [|
      Ast.Cmp (x 1, reg (x 2));
      Ast.B_cond (Ast.Hs, 4);
      Ast.Ldr (x 6, addr (x 5) (reg (x 3)));
      Ast.Ldr (x 8, addr (x 7) (reg (x 9)));
    |]
  in
  let s = Machine.create () in
  Machine.set_reg s (x 1) 8L;
  Machine.set_reg s (x 2) 4L;
  Machine.set_reg s (x 5) 0x8000_0000L;
  Machine.set_reg s (x 7) 0x8010_0000L;
  let t = Machine.copy s in
  Machine.set_reg t (x 1) 1L;
  let events, _ = train_and_run body ~train_state:t ~state:s in
  Alcotest.(check Alcotest.int) "fast branch: one transient load" 1
    (List.length (List.filter (function Core.Transient_load _ -> true | _ -> false) events));
  (* Same body, but the compare operand is loaded right before. *)
  let slow =
    [|
      Ast.Ldr (x 1, addr (x 10) (imm 0L));
      Ast.Cmp (x 1, reg (x 2));
      Ast.B_cond (Ast.Hs, 5);
      Ast.Ldr (x 6, addr (x 5) (reg (x 3)));
      Ast.Ldr (x 8, addr (x 7) (reg (x 9)));
    |]
  in
  let s2 = Machine.copy s in
  Machine.set_reg s2 (x 10) 0x8000_0100L;
  Machine.store s2 0x8000_0100L 8L (* x1 := 8, same branch direction *);
  let t2 = Machine.copy s2 in
  Machine.store t2 0x8000_0100L 1L;
  ignore t2;
  let t2' = Machine.copy s2 in
  Machine.set_reg t2' (x 2) 100L (* branch the other way for training *);
  let events2, _ = train_and_run slow ~train_state:t2' ~state:s2 in
  Alcotest.(check Alcotest.int) "slow branch: both transient loads" 2
    (List.length
       (List.filter (function Core.Transient_load _ -> true | _ -> false) events2))

let test_core_no_straight_line_speculation () =
  let program = [| Ast.B 2; Ast.Ldr (x 1, addr (x 0) (imm 0L)) |] in
  let m = Machine.create () in
  Machine.set_reg m (x 0) 0x8000_0000L;
  let core = Core.create quiet_config in
  let events = Core.run core program m in
  Alcotest.(check bool) "no transient load after direct branch" true
    (not (List.exists (function Core.Transient_load _ -> true | _ -> false) events));
  Alcotest.(check bool) "dead line not cached" false
    (Cache.contains (Core.cache core) 0x8000_0000L)

let test_core_transient_stores_have_no_effect () =
  let program =
    [|
      Ast.Cmp (x 1, reg (x 2));
      Ast.B_cond (Ast.Hs, 3);
      Ast.Str (x 5, addr (x 6) (imm 0L));
    |]
  in
  let s = Machine.create () in
  Machine.set_reg s (x 1) 8L;
  Machine.set_reg s (x 2) 4L;
  Machine.set_reg s (x 6) 0x8000_0000L;
  let t = Machine.copy s in
  Machine.set_reg t (x 1) 1L;
  let _, core = train_and_run program ~train_state:t ~state:s in
  Alcotest.(check bool) "transient store does not allocate" false
    (Cache.contains (Core.cache core) 0x8000_0000L)

(* Property: whatever the speculation, prefetching and noise settings,
   the core must compute exactly the architectural result of the
   reference semantics on random template programs and random states. *)
let random_state rng =
  let m = Machine.create () in
  let rng = ref rng in
  List.iter
    (fun r ->
      let v, rng' = Splitmix.next !rng in
      rng := rng';
      Machine.set_reg m r (Int64.logand v 0x3FFL))
    Reg.all;
  for _ = 1 to 6 do
    let a, rng' = Splitmix.next !rng in
    rng := rng';
    let v, rng'' = Splitmix.next !rng in
    rng := rng'';
    Machine.store m (Int64.logand a 0x3FFL) (Int64.logand v 0x3FFL)
  done;
  m

let prop_speculation_is_architecturally_transparent =
  QCheck.Test.make ~name:"core = reference semantics architecturally" ~count:200
    QCheck.(pair int64 (int_bound 4))
    (fun (seed, template_idx) ->
      let template =
        List.nth
          [
            Scamv_gen.Templates.stride;
            Scamv_gen.Templates.template_a;
            Scamv_gen.Templates.template_b;
            Scamv_gen.Templates.template_c;
            Scamv_gen.Templates.template_d;
          ]
          template_idx
      in
      let { Scamv_gen.Templates.program; _ } = Scamv_gen.Gen.generate ~seed template in
      let program =
        match program with
        | Scamv_arch.Isa.Aarch64_program p -> p
        | Scamv_arch.Isa.Riscv_program _ -> assert false
      in
      let m1 = random_state (Splitmix.of_seed seed) in
      let m2 = Machine.copy m1 in
      let core = Core.create ~seed { Core.cortex_a53 with Core.mispredict_noise = 0.5 } in
      ignore (Core.run core program m1);
      ignore (Scamv_isa.Semantics.run program m2);
      Machine.equal_arch m1 m2)

let prop_cache_respects_associativity =
  QCheck.Test.make ~name:"cache sets never exceed the way count" ~count:200
    QCheck.int64 (fun seed ->
      let c = Cache.create platform in
      let rng = ref (Splitmix.of_seed seed) in
      for _ = 1 to 200 do
        let a, rng' = Splitmix.next !rng in
        rng := rng';
        ignore (Cache.access c (Int64.logand a 0xFFFFFL))
      done;
      List.for_all
        (fun (_, lines) -> List.length lines <= platform.Platform.way_count)
        (Cache.snapshot c))

let prop_cache_most_recent_present =
  QCheck.Test.make ~name:"most recent access always cached" ~count:200 QCheck.int64
    (fun seed ->
      let c = Cache.create platform in
      let rng = ref (Splitmix.of_seed seed) in
      let ok = ref true in
      for _ = 1 to 100 do
        let a, rng' = Splitmix.next !rng in
        rng := rng';
        let addr = Int64.logand a 0xFFFFFL in
        ignore (Cache.access c addr);
        if not (Cache.contains c addr) then ok := false
      done;
      !ok)

let prop_run_deterministic_given_seed =
  QCheck.Test.make ~name:"core runs are deterministic per seed" ~count:100
    QCheck.int64 (fun seed ->
      let { Scamv_gen.Templates.program; _ } =
        Scamv_gen.Gen.generate ~seed Scamv_gen.Templates.template_b
      in
      let program =
        match program with
        | Scamv_arch.Isa.Aarch64_program p -> p
        | Scamv_arch.Isa.Riscv_program _ -> assert false
      in
      let run () =
        let core = Core.create ~seed Core.cortex_a53 in
        let m = random_state (Splitmix.of_seed seed) in
        let events = Core.run core program m in
        (events, Cache.snapshot (Core.cache core))
      in
      run () = run ())

(* ---- Executor ---- *)

let spectre_pair () =
  let s1, train = spectre_states () in
  let s2 = Machine.copy s1 in
  (* Same architecture-visible behaviour (same committed addresses), but
     a different secret: the transient access differs. *)
  Machine.store s2 0x8000_0008L 0x8000L;
  (s1, s2, train)

let exec_config = { (Executor.default_config ()) with Executor.core = quiet_config }

let test_executor_distinguishes_secret () =
  let s1, s2, train = spectre_pair () in
  let verdict =
    Executor.run exec_config
      { Executor.program = spectre_guest; state1 = s1; state2 = s2; train = [ train ] }
  in
  Alcotest.(check bool) "distinguishable" true (verdict = Executor.Distinguishable)

let test_executor_identical_states_indistinguishable () =
  let s1, _, train = spectre_pair () in
  let verdict =
    Executor.run exec_config
      {
        Executor.program = spectre_guest;
        state1 = s1;
        state2 = Machine.copy s1;
        train = [ train ];
      }
  in
  Alcotest.(check bool) "indistinguishable" true (verdict = Executor.Indistinguishable)

let test_executor_region_view_masks_leak () =
  let s1, s2, train = spectre_pair () in
  (* The transient lines land in low sets; an attacker confined to the
     top sets sees nothing. *)
  let cfg =
    { exec_config with Executor.view = Executor.Region { first_set = 120; last_set = 127 } }
  in
  let verdict =
    Executor.run cfg
      { Executor.program = spectre_guest; state1 = s1; state2 = s2; train = [ train ] }
  in
  Alcotest.(check bool) "masked" true (verdict = Executor.Indistinguishable)

let test_executor_inconclusive_on_flaky_prefetch () =
  (* A stride whose prefetch fires with probability 1/2 yields different
     dumps across the 10 repetitions. *)
  let program =
    [|
      Ast.Ldr (x 1, addr (x 0) (imm 0L));
      Ast.Ldr (x 2, addr (x 0) (imm 64L));
      Ast.Ldr (x 3, addr (x 0) (imm 128L));
    |]
  in
  let s = Machine.create () in
  Machine.set_reg s (x 0) 0x8000_0000L;
  let cfg =
    { exec_config with Executor.core = { quiet_config with Core.prefetch_fire_prob = 0.5 } }
  in
  let verdict =
    Executor.run ~seed:7L cfg
      {
        Executor.program = Scamv_arch.Isa.Aarch64_program program;
        state1 = s;
        state2 = Machine.copy s;
        train = [];
      }
  in
  Alcotest.(check bool) "inconclusive" true (verdict = Executor.Inconclusive)

let test_executor_deterministic_given_seed () =
  let s1, s2, train = spectre_pair () in
  let experiment =
    { Executor.program = spectre_guest; state1 = s1; state2 = s2; train = [ train ] }
  in
  let v1 = Executor.run ~seed:42L exec_config experiment in
  let v2 = Executor.run ~seed:42L exec_config experiment in
  Alcotest.(check bool) "same verdict same seed" true (v1 = v2)

(* ---- Flush+Reload ---- *)

let test_flush_reload_timing () =
  let fr = Flush_reload.create quiet_config in
  ignore (Cache.access (Core.cache (Flush_reload.core fr)) 0x8000_0000L);
  Alcotest.(check bool) "hit is fast" true
    (Flush_reload.reload_time fr 0x8000_0000L = Flush_reload.hit_cycles);
  Flush_reload.flush fr 0x8000_0000L;
  Alcotest.(check bool) "miss after flush" true
    (Flush_reload.reload_time fr 0x8000_0000L = Flush_reload.miss_cycles)

let test_flush_reload_detects_victim_access () =
  let fr = Flush_reload.create quiet_config in
  let m = Machine.create () in
  Machine.set_reg m (x 0) 0x8000_0000L;
  Flush_reload.flush fr 0x8000_0000L;
  ignore (Core.run (Flush_reload.core fr) [| Ast.Ldr (x 1, addr (x 0) (imm 0L)) |] m);
  Alcotest.(check bool) "victim access detected" true
    (Flush_reload.was_cached fr 0x8000_0000L)

let () =
  Alcotest.run "scamv_microarch"
    [
      ( "cache",
        [
          Alcotest.test_case "miss then hit" `Quick test_cache_miss_then_hit;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "lru refresh" `Quick test_cache_lru_touch_refreshes;
          Alcotest.test_case "flush" `Quick test_cache_flush;
          Alcotest.test_case "snapshot" `Quick test_cache_snapshot;
          Alcotest.test_case "snapshot order-insensitive" `Quick
            test_cache_snapshot_ignores_lru_order;
          QCheck_alcotest.to_alcotest prop_cache_respects_associativity;
          QCheck_alcotest.to_alcotest prop_cache_most_recent_present;
        ] );
      ( "prefetcher",
        [
          Alcotest.test_case "fires after threshold" `Quick test_prefetcher_fires_after_threshold;
          Alcotest.test_case "constant stride required" `Quick test_prefetcher_needs_constant_stride;
          Alcotest.test_case "page boundary" `Quick test_prefetcher_stops_at_page_boundary;
          Alcotest.test_case "large stride" `Quick test_prefetcher_large_stride;
          Alcotest.test_case "probabilistic" `Quick test_prefetcher_probabilistic;
          Alcotest.test_case "reset" `Quick test_prefetcher_reset;
        ] );
      ( "predictor",
        [
          Alcotest.test_case "default not taken" `Quick test_predictor_default_not_taken;
          Alcotest.test_case "training" `Quick test_predictor_training;
          Alcotest.test_case "saturation" `Quick test_predictor_saturation;
          Alcotest.test_case "indexed by pc" `Quick test_predictor_indexed_by_pc;
        ] );
      ( "core",
        [
          Alcotest.test_case "loads fill cache" `Quick test_core_commit_loads_fill_cache;
          Alcotest.test_case "stride prefetch" `Quick test_core_stride_triggers_prefetch;
          Alcotest.test_case "architectural equivalence" `Quick test_core_architectural_equivalence;
          Alcotest.test_case "transient load issues" `Quick test_core_transient_load_issues;
          Alcotest.test_case "cold predictor" `Quick test_core_no_speculation_without_training;
          Alcotest.test_case "correct prediction" `Quick test_core_correct_prediction_no_transient;
          Alcotest.test_case "dependent load suppressed" `Quick
            test_core_dependent_transient_load_suppressed;
          Alcotest.test_case "taint through alu" `Quick test_core_taint_through_alu;
          Alcotest.test_case "slow branch widens window" `Quick
            test_core_independent_loads_need_slow_branch;
          Alcotest.test_case "no straight-line speculation" `Quick
            test_core_no_straight_line_speculation;
          Alcotest.test_case "transient stores inert" `Quick
            test_core_transient_stores_have_no_effect;
          QCheck_alcotest.to_alcotest prop_speculation_is_architecturally_transparent;
          QCheck_alcotest.to_alcotest prop_run_deterministic_given_seed;
        ] );
      ( "executor",
        [
          Alcotest.test_case "distinguishes secret" `Quick test_executor_distinguishes_secret;
          Alcotest.test_case "identical indistinguishable" `Quick
            test_executor_identical_states_indistinguishable;
          Alcotest.test_case "region view masks" `Quick test_executor_region_view_masks_leak;
          Alcotest.test_case "flaky prefetch inconclusive" `Quick
            test_executor_inconclusive_on_flaky_prefetch;
          Alcotest.test_case "deterministic" `Quick test_executor_deterministic_given_seed;
        ] );
      ( "flush+reload",
        [
          Alcotest.test_case "timing" `Quick test_flush_reload_timing;
          Alcotest.test_case "detects victim access" `Quick test_flush_reload_detects_victim_access;
        ] );
    ]
