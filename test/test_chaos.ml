(* Chaos-injection integration tests: deterministic worker kills, injected
   solver-budget exhaustion, journal poisoning, deadline expiry — all at
   the campaign level, under the frozen clock so every run is a pure
   function of (campaign seed, chaos seed, deadline spec).  The
   process-level SIGKILL acceptance test lives in `bench/main.exe chaos`
   (`make chaos-smoke`); these are its fast in-process companions. *)

module Campaign = Scamv.Campaign
module Journal = Scamv.Journal
module Retry = Scamv.Retry
module Stats = Scamv.Stats
module Sat = Scamv_smt.Sat
module Templates = Scamv_gen.Templates
module Refinement = Scamv_models.Refinement
module Executor = Scamv_microarch.Executor
module Chaos = Scamv_util.Chaos
module Deadline = Scamv_util.Deadline
module Stopwatch = Scamv_util.Stopwatch
module Collector = Scamv_telemetry.Collector
module Metrics = Scamv_telemetry.Metrics

let temp_path name =
  let path = Filename.temp_file "scamv_chaos" name in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  path

let cfg ?deadline ?chaos ?(programs = 4) ?(tests = 2) () =
  Campaign.make ~name:"chaos-test"
    ~template:(Templates.by_name "A")
    ~setup:(Refinement.mct_vs_mspec ())
    ~programs ~tests_per_program:tests ~seed:2021L
    ~sat_budget:(Sat.budget ~conflicts:150 ())
    ?deadline ?chaos ~clock:Stopwatch.frozen ()

let run ?resume ~jobs c =
  let journal = Journal.create () in
  let events = ref [] in
  let outcome =
    Campaign.run ~on_event:(fun m -> events := m :: !events) ~journal ?resume ~jobs c
  in
  (journal, outcome, List.rev !events)

let counter (o : Campaign.outcome) name =
  Metrics.counter o.Campaign.telemetry.Collector.metrics name

let crashed_events journal =
  List.filter_map
    (function
      | Journal.Crashed { program_index; reason; _ } -> Some (program_index, reason)
      | _ -> None)
    (Journal.events journal)

(* ---- worker kills ---- *)

let kill_chaos () = Chaos.create ~rate:0.4 ~seed:0xC4A05L ()

let test_worker_kills_supervised () =
  let programs = 6 in
  let journal, outcome, _ = run ~jobs:1 (cfg ~chaos:(kill_chaos ()) ~programs ()) in
  let crashed = outcome.Campaign.stats.Stats.crashed_programs in
  Alcotest.(check bool) "some programs crashed" true (crashed > 0);
  Alcotest.(check bool) "not all programs crashed" true (crashed < programs);
  Alcotest.(check Alcotest.int)
    "every program accounted for" programs outcome.Campaign.stats.Stats.programs;
  let crashes = crashed_events journal in
  Alcotest.(check Alcotest.int) "one Crashed event per kill" crashed
    (List.length crashes);
  List.iter
    (fun (_, reason) ->
      Alcotest.(check bool) "reason names the chaos kill" true
        (let has_sub s sub =
          let n = String.length sub and h = String.length s in
          let rec go i = i + n <= h && (String.sub s i n = sub || go (i + 1)) in
          go 0
        in
        has_sub reason "chaos"))
    crashes;
  Alcotest.(check Alcotest.int)
    "one pool restart per crash" crashed
    (counter outcome "pool.restarts");
  Alcotest.(check bool) "injections counted" true (counter outcome "chaos.injections" > 0)

let test_worker_kills_jobs_independent () =
  (* The same chaos seed must produce byte-identical journals, stats and
     progress logs at every jobs level: kill decisions are keyed on the
     program index, never on the schedule. *)
  let go jobs =
    let journal, outcome, events = run ~jobs (cfg ~chaos:(kill_chaos ()) ~programs:6 ()) in
    (Journal.to_csv journal, outcome.Campaign.stats, events, counter outcome "pool.restarts")
  in
  let csv1, stats1, events1, restarts1 = go 1 in
  let csv3, stats3, events3, restarts3 = go 3 in
  Alcotest.(check string) "journal byte-identical" csv1 csv3;
  Alcotest.(check bool) "stats identical" true (Stdlib.compare stats1 stats3 = 0);
  Alcotest.(check (Alcotest.list Alcotest.string)) "progress identical" events1 events3;
  Alcotest.(check Alcotest.int) "restarts identical" restarts1 restarts3

let test_chaos_campaign_resume_redraws_faults () =
  (* A resumed chaos campaign re-draws exactly the faults the interrupted
     one saw: fault decisions are pure in (seed, site, key), so resuming
     from a torn checkpoint converges on identical final output. *)
  let mk () = cfg ~chaos:(kill_chaos ()) ~programs:6 () in
  let path = temp_path ".journal" in
  let persisted = Journal.create ~path () in
  let (_ : Campaign.outcome) = Campaign.run ~journal:persisted ~jobs:1 (mk ()) in
  Journal.close persisted;
  (* Tear the tail mid-record, as a kill would. *)
  let whole = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub whole 0 (String.length whole - 6)));
  let journal_resumed, resumed, _ = run ~resume:path ~jobs:1 (mk ()) in
  let journal_full, full, _ = run ~jobs:1 (mk ()) in
  Alcotest.(check string) "journal identical after resume"
    (Journal.to_csv journal_full)
    (Journal.to_csv journal_resumed);
  Alcotest.(check bool) "stats identical after resume" true
    (Stdlib.compare full.Campaign.stats resumed.Campaign.stats = 0);
  Alcotest.(check bool) "tail recovery counted" true
    (counter resumed "journal.recovered_tails" > 0)

(* ---- injected solver-budget exhaustion ---- *)

let test_solver_budget_chaos_quarantines () =
  (* A seed whose worker-kill rolls spare enough programs for their path
     pairs to reach the solver.budget site: injected exhaustion must
     surface as ordinary quarantine events. *)
  let c = Chaos.create ~rate:0.3 ~seed:7L () in
  let journal, outcome, _ = run ~jobs:1 (cfg ~chaos:c ~programs:6 ()) in
  let injected_quarantines =
    List.filter
      (function
        | Journal.Quarantined { reason; _ } ->
          (* The pipeline tags injected exhaustion distinctly. *)
          String.length reason >= 5 && String.sub reason 0 5 = "chaos"
        | _ -> false)
      (Journal.events journal)
  in
  Alcotest.(check bool) "chaos quarantined some path pairs" true
    (injected_quarantines <> []);
  Alcotest.(check bool) "quarantines counted in stats" true
    (outcome.Campaign.stats.Stats.budget_exceeded >= List.length injected_quarantines)

(* ---- journal poisoning ---- *)

let test_journal_poison_truncates_on_recovery () =
  (* Each record's poison decision is keyed on its index, so a twin chaos
     instance predicts exactly which record is first corrupted; tolerant
     recovery must keep exactly the records before it. *)
  let rate = 0.2 and seed = 42L in
  let twin = Chaos.create ~rate ~seed () in
  let first_poisoned = ref None in
  let k = ref 0 in
  while !first_poisoned = None && !k < 200 do
    if Chaos.roll twin ~site:"journal.poison" ~key:(Int64.of_int !k) then
      first_poisoned := Some !k;
    incr k
  done;
  let poisoned =
    match !first_poisoned with
    | Some k -> k
    | None -> Alcotest.fail "no poison roll in 200 records at rate 0.2"
  in
  let path = temp_path ".poison" in
  let j = Journal.create ~path ~chaos:(Chaos.create ~rate ~seed ()) () in
  let entry i =
    {
      Journal.campaign = "c";
      program_index = i;
      test_index = 0;
      template = "A";
      isa = Scamv_arch.Isa.Aarch64;
      path_pair = (0, 1);
      verdict = Executor.Inconclusive;
      generation_seconds = 0.0;
      execution_seconds = 0.0;
      retries = 0;
      faults = 0;
    }
  in
  for i = 0 to poisoned + 2 do
    Journal.record j (entry i)
  done;
  Journal.close j;
  let recovered, recovery = Journal.load ~path in
  Alcotest.(check Alcotest.int) "clean prefix ends at the poisoned record"
    poisoned recovery.Journal.records;
  Alcotest.(check bool) "corruption reported" true (recovery.Journal.dropped_bytes > 0);
  Alcotest.(check Alcotest.int) "events match prefix" poisoned
    (List.length (Journal.events recovered))

(* ---- deadline expiry ---- *)

let test_deadline_expiry_records_crash () =
  let programs = 6 in
  let journal, outcome, _ =
    run ~jobs:1 (cfg ~deadline:(Deadline.Conflicts 150) ~programs ~tests:3 ())
  in
  let crashed = outcome.Campaign.stats.Stats.crashed_programs in
  Alcotest.(check bool) "some programs hit the deadline" true (crashed > 0);
  Alcotest.(check bool) "deadline.hits counted" true
    (counter outcome "deadline.hits" > 0);
  List.iter
    (fun (_, reason) ->
      Alcotest.(check bool) "reason names the deadline" true
        (let has_sub s sub =
           let n = String.length sub and h = String.length s in
           let rec go i = i + n <= h && (String.sub s i n = sub || go (i + 1)) in
           go 0
         in
         has_sub reason "deadline"))
    (crashed_events journal);
  (* No worker restarts: deadline expiry ends the program cooperatively,
     the domain survives. *)
  Alcotest.(check Alcotest.int) "no pool restarts" 0 (counter outcome "pool.restarts")

let test_deadline_jobs_independent () =
  let go jobs =
    let journal, outcome, events =
      run ~jobs (cfg ~deadline:(Deadline.Conflicts 150) ~programs:6 ~tests:3 ())
    in
    (Journal.to_csv journal, outcome.Campaign.stats, events)
  in
  let csv1, stats1, events1 = go 1 in
  let csv2, stats2, events2 = go 2 in
  Alcotest.(check string) "journal byte-identical" csv1 csv2;
  Alcotest.(check bool) "stats identical" true (Stdlib.compare stats1 stats2 = 0);
  Alcotest.(check (Alcotest.list Alcotest.string)) "progress identical" events1 events2

let () =
  Alcotest.run "scamv_chaos"
    [
      ( "worker-kills",
        [
          Alcotest.test_case "supervised kills recorded" `Quick
            test_worker_kills_supervised;
          Alcotest.test_case "byte-identical across jobs" `Quick
            test_worker_kills_jobs_independent;
          Alcotest.test_case "resume re-draws the same faults" `Quick
            test_chaos_campaign_resume_redraws_faults;
        ] );
      ( "solver-budget",
        [
          Alcotest.test_case "injected exhaustion quarantines" `Quick
            test_solver_budget_chaos_quarantines;
        ] );
      ( "journal-poison",
        [
          Alcotest.test_case "recovery stops at poisoned record" `Quick
            test_journal_poison_truncates_on_recovery;
        ] );
      ( "deadline",
        [
          Alcotest.test_case "expiry records crash" `Quick
            test_deadline_expiry_records_crash;
          Alcotest.test_case "byte-identical across jobs" `Quick
            test_deadline_jobs_independent;
        ] );
    ]
